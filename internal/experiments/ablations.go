package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// This file implements the ablation studies DESIGN.md calls out: each
// isolates one design choice or proposed optimization from the paper's
// discussion section (Table III's "Optimization" column) and measures its
// effect with SDchecker.

// HeartbeatAblationRow relates the MR AM heartbeat interval to the
// container acquisition delay (Table III row 2: "Trade-off, increasing
// heartbeat frequency").
type HeartbeatAblationRow struct {
	IntervalMs  int64
	Acquisition stats.Summary
	// HeartbeatsPerSec approximates the control-plane load the trade-off
	// costs: total pulls per second per application.
	HeartbeatsPerSec float64
}

// AblationHeartbeat sweeps the AM heartbeat interval.
func AblationHeartbeat() []HeartbeatAblationRow {
	rows := make([]HeartbeatAblationRow, 0, 5)
	for _, interval := range []int64{250, 500, 1000, 2000, 3000} {
		opts := DefaultOptions()
		opts.Yarn.AMHeartbeatMs = interval
		opts.Seed = 42 + uint64(interval)
		s := NewScenario(opts)
		s.PrewarmCaches("/mr/job-hb.jar")
		cfg := workload.MRWordcount("hb", 600)
		cfg.Name = "hb"
		cfg.MaxConcurrentMaps = 150
		mapreduce.Submit(s.RM, s.FS, cfg)
		s.Run(3600 * 1000)
		rep := s.Check()
		rows = append(rows, HeartbeatAblationRow{
			IntervalMs:       interval,
			Acquisition:      rep.Acquisition.Summarize(fmt.Sprintf("acq@%dms", interval)),
			HeartbeatsPerSec: 1000.0 / float64(interval),
		})
	}
	return rows
}

// FormatAblationHeartbeat renders the trade-off.
func FormatAblationHeartbeat(rows []HeartbeatAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation — AM heartbeat interval vs acquisition delay (Table III row 2):\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %16s\n", "interval", "acq p50(ms)", "acq p95(ms)", "heartbeats/s/app")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %14.0f %14.0f %16.1f\n",
			fmt.Sprintf("%dms", r.IntervalMs), r.Acquisition.P50, r.Acquisition.P95, r.HeartbeatsPerSec)
	}
	b.WriteString("  (faster heartbeats cut acquisition delay but multiply cluster RPC load)\n")
	return b.String()
}

// GateAblationRow relates Spark's minRegisteredResourcesRatio to the
// executor delay and total scheduling delay.
type GateAblationRow struct {
	Ratio    float64
	Total    stats.Summary
	Executor stats.Summary
}

// AblationGate sweeps the registration gate.
func AblationGate(queries int) []GateAblationRow {
	if queries <= 0 {
		queries = 80
	}
	rows := make([]GateAblationRow, 0, 3)
	for _, ratio := range []float64{0.5, 0.8, 1.0} {
		tr := DefaultTraceRun(queries)
		tr.Seed = 91 + uint64(ratio*10)
		r := ratio
		tr.MutateSpark = func(i int, cfg *spark.Config) {
			// 16 executors so the gate actually binds: with the default 4,
			// the driver's init outlasts all registrations anyway.
			cfg.Executors = 16
			cfg.MinRegisteredRatio = r
		}
		_, rep := tr.Run()
		rows = append(rows, GateAblationRow{
			Ratio:    ratio,
			Total:    rep.Total.Summarize(fmt.Sprintf("total@%.1f", ratio)),
			Executor: rep.Executor.Summarize(fmt.Sprintf("exec@%.1f", ratio)),
		})
	}
	return rows
}

// FormatAblationGate renders the sweep.
func FormatAblationGate(rows []GateAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation — minRegisteredResourcesRatio vs scheduling delay:\n")
	fmt.Fprintf(&b, "  %-8s %14s %14s\n", "ratio", "total p95(s)", "exec p95(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8.1f %14.1f %14.1f\n", r.Ratio, msToSec(r.Total.P95), msToSec(r.Executor.P95))
	}
	b.WriteString("  (a lower gate starts tasks on fewer executors: less waiting, less parallelism)\n")
	return b.String()
}

// JVMReuseAblation compares default cold JVMs against the paper's
// proposed JVM-reuse optimization (Table III rows 5-6).
type JVMReuseAblation struct {
	Cold, Reuse *core.Report
	Comparison  *core.Comparison
}

// AblationJVMReuse runs the comparison.
func AblationJVMReuse(queries int) *JVMReuseAblation {
	if queries <= 0 {
		queries = 80
	}
	run := func(reuse bool) *core.Report {
		tr := DefaultTraceRun(queries)
		tr.Seed = 101
		tr.Opts.Yarn.JVMReuse = reuse
		_, rep := tr.Run()
		return rep
	}
	cold := run(false)
	reuse := run(true)
	return &JVMReuseAblation{
		Cold:       cold,
		Reuse:      reuse,
		Comparison: core.Compare("cold-jvm", cold, "jvm-reuse", reuse),
	}
}

// DedicatedDiskAblation compares localization under dfsIO interference
// with and without the §V-B dedicated localization storage class.
type DedicatedDiskAblation struct {
	Shared, Dedicated *core.Report
	Comparison        *core.Comparison
}

// AblationDedicatedDisk runs the comparison under 100-map dfsIO pressure.
func AblationDedicatedDisk(queries int) *DedicatedDiskAblation {
	if queries <= 0 {
		queries = 80
	}
	run := func(dedicatedMBps float64) *core.Report {
		tr := DefaultTraceRun(queries)
		tr.Seed = 111
		tr.Opts.Yarn.DedicatedLocalDiskMBps = dedicatedMBps
		var ifID string
		tr.Background = func(s *Scenario) {
			cfg := workload.DfsIO(100, 20)
			s.PrewarmCaches("/mr/job-" + cfg.Name + ".jar")
			app := mapreduce.Submit(s.RM, s.FS, cfg)
			ifID = app.ID.String()
		}
		_, rep := tr.Run()
		return rep.Filter(func(a *core.AppTrace) bool { return a.ID.String() != ifID })
	}
	shared := run(0)
	dedicated := run(1500)
	return &DedicatedDiskAblation{
		Shared:     shared,
		Dedicated:  dedicated,
		Comparison: core.Compare("shared-disk", shared, "dedicated-ssd", dedicated),
	}
}

// OrderingAblation compares FIFO and Fair request ordering under a mixed
// workload of small queries and one large MR job.
type OrderingAblation struct {
	FIFO, Fair *core.Report
	Comparison *core.Comparison
}

// AblationOrdering runs the comparison: a 2000-map MR job is submitted
// just before a stream of small queries; fair ordering lets the small
// applications' requests bypass the giant's backlog.
func AblationOrdering(queries int) *OrderingAblation {
	if queries <= 0 {
		queries = 60
	}
	run := func(policy yarn.OrderingPolicy) *core.Report {
		tr := DefaultTraceRun(queries)
		tr.Seed = 121
		tr.Opts.Yarn.Ordering = policy
		var ifID string
		tr.Background = func(s *Scenario) {
			s.PrewarmCaches("/mr/job-big.jar")
			cfg := workload.MRWordcount("big", 2000)
			cfg.Name = "big"
			cfg.MapCPUSec = 2.0
			app := mapreduce.Submit(s.RM, s.FS, cfg)
			ifID = app.ID.String()
		}
		_, rep := tr.Run()
		return rep.Filter(func(a *core.AppTrace) bool { return a.ID.String() != ifID })
	}
	fifo := run(yarn.OrderFIFO)
	fair := run(yarn.OrderFair)
	return &OrderingAblation{
		FIFO:       fifo,
		Fair:       fair,
		Comparison: core.Compare("fifo", fifo, "fair", fair),
	}
}
