package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

// TestSmokeSingleQuery runs one TPC-H query end to end and checks that
// SDchecker reconstructs a complete decomposition from the logs alone.
func TestSmokeSingleQuery(t *testing.T) {
	s := NewScenario(DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	cfg := spark.DefaultConfig(workload.TPCHQuery(5, 2048, tables))
	app := spark.Submit(s.RM, s.FS, cfg)
	end := s.Run(sim.Time(30 * 60 * sim.Second))
	if !app.Finished() {
		t.Fatalf("app did not finish by t=%d", end)
	}
	rep := s.Check()
	if len(rep.Apps) != 1 {
		t.Fatalf("expected 1 app, got %d", len(rep.Apps))
	}
	d := rep.Apps[0].Decomp
	t.Logf("end=%ds total=%dms am=%dms in=%dms out=%dms driver=%dms executor=%dms alloc=%dms job=%dms",
		int64(end)/1000, d.Total, d.AM, d.In, d.Out, d.Driver, d.Executor, d.Alloc, d.JobRuntime)
	t.Logf("\n%s", rep.Format())
	for name, v := range map[string]int64{
		"total": d.Total, "am": d.AM, "in": d.In, "out": d.Out,
		"driver": d.Driver, "executor": d.Executor, "alloc": d.Alloc, "job": d.JobRuntime,
	} {
		if v < 0 {
			t.Errorf("component %s missing", name)
		}
	}
	if d.Total > d.JobRuntime {
		t.Errorf("total %d > job runtime %d", d.Total, d.JobRuntime)
	}
}
