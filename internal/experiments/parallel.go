package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// concurrently runs f(0) .. f(n-1) on up to GOMAXPROCS goroutines and
// waits for all of them. Sweep points (Fig5 sizes, Fig12 interference
// levels) are independent simulations, so they parallelize trivially;
// each f writes only its own row, keeping output order deterministic.
func concurrently(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
