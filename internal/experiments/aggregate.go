package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
)

// SweepTable aggregates a parameter sweep (input size, interference
// level, ...) through the mergeable quantile sketches: one
// core.ClusterBreakdown per sweep point, plus a lossless whole-sweep
// merge. This is the shared table machinery behind the Fig 5 / Fig 12
// sweeps and benchall's JSON output.
type SweepTable struct {
	Name   string
	Points []SweepPoint
}

// SweepPoint is one sweep setting's aggregate.
type SweepPoint struct {
	Label     string
	Breakdown *core.ClusterBreakdown
}

// NewSweepTable returns an empty table.
func NewSweepTable(name string) *SweepTable {
	return &SweepTable{Name: name}
}

// Add folds one sweep point's report in and returns its breakdown (so
// row builders can read individual quantiles from the same sketches).
func (t *SweepTable) Add(label string, rep *core.Report) *core.ClusterBreakdown {
	cb := rep.Breakdown()
	t.Points = append(t.Points, SweepPoint{Label: label, Breakdown: cb})
	return cb
}

// Merged losslessly merges every point's sketches — the whole-sweep
// rollup. All breakdowns share the default alpha, so a merge failure is
// a harness bug.
func (t *SweepTable) Merged() *core.ClusterBreakdown {
	out := core.NewClusterBreakdown()
	for _, p := range t.Points {
		if err := out.Merge(p.Breakdown); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	}
	return out
}

// SweepRow is one (point, component) percentile summary. The embedded
// BreakdownRow marshals flat, so JSON rows read
// {"label": ..., "component": ..., "p95_ms": ...}.
type SweepRow struct {
	Label string `json:"label"`
	core.BreakdownRow
}

// ComponentAcross returns one row per sweep point for a single
// component, in sweep order — a paper-style "metric vs parameter" series
// computed from the sketches.
func (t *SweepTable) ComponentAcross(component string) []SweepRow {
	out := make([]SweepRow, 0, len(t.Points))
	for _, p := range t.Points {
		s := p.Breakdown.Component(component)
		out = append(out, SweepRow{Label: p.Label, BreakdownRow: core.BreakdownRow{
			Component: component,
			Count:     s.Count(),
			MeanMS:    s.Mean(),
			P50MS:     s.Quantile(0.50),
			P95MS:     s.Quantile(0.95),
			P99MS:     s.Quantile(0.99),
			MaxMS:     s.Max(),
		}})
	}
	return out
}

// Format renders the requested components (default: all observed) as
// text tables across the sweep.
func (t *SweepTable) Format(components ...string) string {
	if len(components) == 0 {
		components = core.Components
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-component delay percentiles (sketch alpha %.2g):\n",
		t.Name, core.NewClusterBreakdown().Alpha)
	for _, comp := range components {
		rows := t.ComponentAcross(comp)
		any := false
		for _, r := range rows {
			if r.Count > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(&b, "  %s:\n", comp)
		fmt.Fprintf(&b, "    %-10s %7s %9s %9s %9s %9s\n", "point", "count", "p50ms", "p95ms", "p99ms", "maxms")
		for _, r := range rows {
			fmt.Fprintf(&b, "    %-10s %7d %9.0f %9.0f %9.0f %9.0f\n",
				r.Label, r.Count, r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
		}
	}
	return b.String()
}

// sweepJSON is the benchall JSON export shape.
type sweepJSON struct {
	Name   string              `json:"name"`
	Alpha  float64             `json:"alpha"`
	Points []sweepPointJSON    `json:"points"`
	Merged []core.BreakdownRow `json:"merged"`
}

type sweepPointJSON struct {
	Label      string              `json:"label"`
	Components []core.BreakdownRow `json:"components"`
	ByQueue    []core.BreakdownRow `json:"rows,omitempty"`
}

// JSON renders the sweep as indented JSON: per-point component rollups,
// per-point exact (component, queue, node) rows, and the whole-sweep
// merged rollup.
func (t *SweepTable) JSON() ([]byte, error) {
	doc := sweepJSON{Name: t.Name, Alpha: core.NewClusterBreakdown().Alpha}
	for _, p := range t.Points {
		doc.Points = append(doc.Points, sweepPointJSON{
			Label:      p.Label,
			Components: p.Breakdown.ComponentRows(),
			ByQueue:    p.Breakdown.Rows(),
		})
	}
	doc.Merged = t.Merged().ComponentRows()
	return json.MarshalIndent(doc, "", "  ")
}

// Fig5Aggregate assembles the input-size sweep's aggregation table from
// the breakdowns Fig5 computed.
func Fig5Aggregate(rows []Fig5Row) *SweepTable {
	t := NewSweepTable("Fig 5 input-size sweep")
	for _, r := range rows {
		t.Points = append(t.Points, SweepPoint{Label: sizeLabel(r.DatasetMB), Breakdown: r.Breakdown})
	}
	return t
}

// Fig12Aggregate assembles the interference sweep's aggregation table
// from the breakdowns Fig12 computed.
func Fig12Aggregate(rows []Fig12Row) *SweepTable {
	t := NewSweepTable("Fig 12 dfsIO interference sweep")
	for _, r := range rows {
		t.Points = append(t.Points, SweepPoint{Label: fmt.Sprintf("%dmaps", r.InterferenceMaps), Breakdown: r.Breakdown})
	}
	return t
}
