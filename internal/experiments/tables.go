package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TableIIRow is one cluster-load level's container throughput.
type TableIIRow struct {
	LoadPercent int
	Throughput  float64 // containers allocated per second
	Allocated   int
}

// TableII reproduces the container-throughput study: MapReduce wordcount
// pinned at 10/40/70/100% cluster load. Two deployment knobs differ from
// the latency experiments, as they would on a throughput-tuned cluster:
// batch per-heartbeat assignment is enabled and delay scheduling is off
// (wordcount input is everywhere, so every node is local).
func TableII() []TableIIRow {
	rows := make([]TableIIRow, 0, 4)
	for _, load := range []int{10, 40, 70, 100} {
		opts := DefaultOptions()
		opts.Yarn.MaxAssignPerHeartbeat = 0 // batch assignment
		opts.Yarn.LocalityDelayMaxBeats = 0
		s := NewScenario(opts)
		s.PrewarmCaches("/mr/job-tput.jar")
		window := workload.ClusterLoadMaps(s.Cl, float64(load)/100)
		cfg := workload.MRWordcount("tput", window*5)
		cfg.Name = "tput"
		cfg.MaxConcurrentMaps = window
		mapreduce.Submit(s.RM, s.FS, cfg)
		s.Run(sim.Time(3600 * sim.Second))
		rep := s.Check()
		rows = append(rows, TableIIRow{
			LoadPercent: load,
			Throughput:  rep.AllocationThroughput(),
			Allocated:   s.RM.AllocatedTotal,
		})
	}
	return rows
}

// FormatTableII renders the table in the paper's layout.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II — cluster container throughput under various workloads:\n")
	b.WriteString("  cluster load     ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d%%", r.LoadPercent)
	}
	b.WriteString("\n  throughput (1/s) ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.0f", r.Throughput)
	}
	b.WriteString("\n  (paper:          272     1056     1607     2831)\n")
	return b.String()
}

// TableIIIRow is one delay source's summary (paper Table III).
type TableIIIRow struct {
	Source       string
	Cause        string
	Contribution float64 // fraction of the mean total scheduling delay
	Optimization string
}

// TableIII derives the component-contribution summary from a Fig 4 run.
func TableIII(fig4 *Fig4Result) []TableIIIRow {
	shares := fig4.Report.ComponentShare()
	rows := []TableIIIRow{
		{"1.alloc-delays", "Time of resource allocation decisions at ResourceManager",
			shares["alloc-delays"], "Trade-off, using distributed scheduler"},
		{"2.acqui-delays", "Time of waiting allocated containers to be acquired by AppMaster",
			shares["acqui-delays"], "Trade-off, increasing heartbeat frequency"},
		{"3.local-delays", "Time of downloading localization files from HDFS",
			shares["local-delays"], "User&Design, dedicated storage&caching service"},
		{"4.laun-delays", "Time of launching AppMaster/executor (e.g., JVM starts)",
			shares["laun-delays"], "User, avoiding OS-container"},
		{"5.driver-delay", "Time of Spark driver initialization",
			shares["driver-delay"], "Trade-off, JVM reuse"},
		{"6.executor-delay", "Time of Spark executor initialization and Spark task scheduling",
			shares["executor-delay"], "Trade-off&User, JVM reuse&user application optimizations"},
	}
	return rows
}

// FormatTableIII renders the summary table.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	b.WriteString("Table III — summary of the scheduling delays:\n")
	fmt.Fprintf(&b, "  %-18s %-14s %s\n", "source", "contribution", "optimization")
	sorted := append([]TableIIIRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Source < sorted[j].Source })
	for _, r := range sorted {
		contrib := fmt.Sprintf("%.0f%%", r.Contribution*100)
		if r.Contribution < 0.01 {
			contrib = "<1%"
		}
		fmt.Fprintf(&b, "  %-18s %-14s %s\n", r.Source, contrib, r.Optimization)
	}
	return b.String()
}
