package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// TestSparkSurvivesLaunchFailures injects a 25% container launch failure
// rate and checks every query still completes (the driver re-requests
// replacements) and SDchecker still decomposes cleanly.
func TestSparkSurvivesLaunchFailures(t *testing.T) {
	opts := DefaultOptions()
	opts.Yarn.LaunchFailureProb = 0.25
	opts.Seed = 201
	s := NewScenario(opts)
	tables := workload.CreateTPCHTables(s.FS, 2048)
	apps := make([]*spark.App, 0, 10)
	for i := 0; i < 10; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		at := sim.Time(int64(i)*3000 + 2000)
		idx := i
		s.Eng.At(at, func() { apps = append(apps, spark.Submit(s.RM, s.FS, cfg)); _ = idx })
	}
	s.Run(sim.Time(3600 * sim.Second))
	for i, app := range apps {
		if !app.Finished() {
			t.Fatalf("app %d did not survive launch failures", i)
		}
	}
	rep := s.Check()
	// Failures are visible in the logs...
	var nmAll strings.Builder
	for _, f := range s.Sink.Files() {
		if strings.Contains(f, "nodemanager") {
			nmAll.WriteString(strings.Join(s.Sink.Lines(f), "\n"))
		}
	}
	if !strings.Contains(nmAll.String(), "EXITED_WITH_FAILURE") {
		t.Fatal("no injected failures at a 25% rate — injection broken?")
	}
	// ...but must not confuse the bug detector (they have NM states).
	for _, b := range rep.Bugs {
		t.Errorf("failed container misflagged as over-allocation bug: %v", b)
	}
	// And every app still decomposes fully.
	for _, a := range rep.Apps {
		if a.Decomp == nil || a.Decomp.Total < 0 || a.Decomp.Executor < 0 {
			t.Fatalf("app %s decomposition incomplete under failures: %+v", a.ID, a.Decomp)
		}
	}
	// No capacity leak: everything released at the end.
	if u := s.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after drain, want 0 (capacity leak)", u)
	}
}

// TestMRSurvivesLaunchFailures does the same for a MapReduce job,
// including failed AM containers (retried by the RM itself).
func TestMRSurvivesLaunchFailures(t *testing.T) {
	opts := DefaultOptions()
	opts.Yarn.LaunchFailureProb = 0.3
	opts.Yarn.LocalityDelayMaxBeats = 0
	opts.Seed = 202
	s := NewScenario(opts)
	s.PrewarmCaches("/mr/job-fwc.jar")
	cfg := mapreduce.DefaultConfig("fwc", 20, 3)
	cfg.Name = "fwc"
	cfg.MapInputMB = 16
	cfg.ReduceShuffleMB = 8
	app := mapreduce.Submit(s.RM, s.FS, cfg)
	s.Run(sim.Time(3600 * sim.Second))
	if !app.Finished() {
		t.Fatal("MR job did not survive launch failures")
	}
	if u := s.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after drain (capacity leak)", u)
	}
}

// TestFailureFreeRunsUnchanged guards the zero-probability path: failure
// injection off must not alter behavior at all.
func TestFailureFreeRunsUnchanged(t *testing.T) {
	run := func(prob float64) string {
		opts := DefaultOptions()
		opts.Yarn.LaunchFailureProb = prob
		opts.Seed = 203
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		cfg := spark.DefaultConfig(workload.TPCHQuery(3, 2048, tables))
		spark.Submit(s.RM, s.FS, cfg)
		s.Run(sim.Time(1800 * sim.Second))
		return s.Check().Format()
	}
	if run(0) != run(0) {
		t.Fatal("zero-probability runs are not deterministic")
	}
}

// TestValidatorAcceptsFailureTraces ensures failure logs do not trip the
// temporal-consistency validator.
func TestValidatorAcceptsFailureTraces(t *testing.T) {
	opts := DefaultOptions()
	opts.Yarn.LaunchFailureProb = 0.25
	opts.Seed = 204
	s := NewScenario(opts)
	tables := workload.CreateTPCHTables(s.FS, 2048)
	spark.Submit(s.RM, s.FS, spark.DefaultConfig(workload.TPCHQuery(7, 2048, tables)))
	s.Run(sim.Time(1800 * sim.Second))
	rep := s.Check()
	if problems := rep.ValidateAll(); len(problems) != 0 {
		t.Fatalf("validator flagged failure traces: %v", problems)
	}
	_ = core.Missing
}
