package experiments

import (
	"os"
	"sync"
	"testing"

	"repro/internal/core"
)

// benchTree lazily generates one log tree on disk, shared by every
// mining benchmark so they all measure the same input. A plain temp dir
// rather than b.TempDir: the latter is torn down when the first
// benchmark that created it returns, stranding the others.
var benchTree struct {
	once  sync.Once
	dir   string
	err   error
	lines int
}

func benchTreeDir(b *testing.B) string {
	benchTree.once.Do(func() {
		tr := DefaultTraceRun(24)
		tr.Seed = 97
		s, _ := tr.Run()
		dir, err := os.MkdirTemp("", "sdchecker-minebench-")
		if err == nil {
			err = s.Sink.WriteDir(dir)
		}
		benchTree.dir, benchTree.err = dir, err
		benchTree.lines = s.Sink.TotalLines()
	})
	if benchTree.err != nil {
		b.Fatalf("writing bench tree: %v", benchTree.err)
	}
	return benchTree.dir
}

func benchmarkMine(b *testing.B, workers int) {
	dir := benchTreeDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.MineDir(dir, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Apps) == 0 {
			b.Fatal("bench tree mined no applications")
		}
	}
	b.ReportMetric(float64(benchTree.lines), "lines/op")
}

func BenchmarkMineSerial(b *testing.B)    { benchmarkMine(b, 1) }
func BenchmarkMineParallel2(b *testing.B) { benchmarkMine(b, 2) }
func BenchmarkMineParallel4(b *testing.B) { benchmarkMine(b, 4) }
func BenchmarkMineParallel8(b *testing.B) { benchmarkMine(b, 8) }

// TestMineBench smoke-tests the benchall scaling table on a tiny trace:
// rows present, wall times positive, reports verified identical inside
// MineBench itself (it panics on divergence).
func TestMineBench(t *testing.T) {
	res := MineBench(6, []int{1, 2})
	if len(res.Rows) != 2 || res.Apps == 0 || res.LinesParsed == 0 {
		t.Fatalf("result %+v", res)
	}
	for _, r := range res.Rows {
		if r.WallMS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	if _, err := res.JSON(); err != nil {
		t.Fatal(err)
	}
	if res.Format() == "" {
		t.Fatal("empty format")
	}
}
