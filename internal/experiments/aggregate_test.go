package experiments

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// exactQuantile is the same nearest-rank definition digest.Sketch uses
// (1-based rank ceil(p*n)), computed exactly on the raw samples.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestSweepShardMergeParity is the acceptance check for the mergeable
// aggregation path: splitting one run's applications across shards,
// sketching each shard independently and merging reproduces the
// whole-run breakdown exactly, and the merged percentiles match the
// exact sample percentiles within the sketch's documented relative
// error bound (alpha).
func TestSweepShardMergeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	tr := DefaultTraceRun(40)
	tr.Seed = 17
	_, rep := tr.Run()
	if len(rep.Apps) < 8 {
		t.Fatalf("trace produced only %d apps", len(rep.Apps))
	}

	whole := rep.Breakdown()

	// Shard the applications four ways and sketch each shard on its own,
	// as independent collector processes would.
	const shards = 4
	table := NewSweepTable("shard parity")
	for s := 0; s < shards; s++ {
		cb := core.NewClusterBreakdown()
		for i, a := range rep.Apps {
			if i%shards == s {
				cb.Observe(a)
			}
		}
		table.Points = append(table.Points, SweepPoint{Label: "shard", Breakdown: cb})
	}
	merged := table.Merged()

	// Merging is exact: every key, count and quantile of the merged
	// breakdown must equal the whole-run breakdown bit for bit.
	wholeRows, mergedRows := whole.Rows(), merged.Rows()
	if len(wholeRows) != len(mergedRows) {
		t.Fatalf("row count: whole %d, merged %d", len(wholeRows), len(mergedRows))
	}
	for i := range wholeRows {
		if wholeRows[i] != mergedRows[i] {
			t.Errorf("row %d differs:\n whole  %+v\n merged %+v", i, wholeRows[i], mergedRows[i])
		}
	}

	// And the merged sketch's percentiles must sit within alpha of the
	// exact sample percentiles for every component with data.
	alpha := merged.Alpha
	for _, comp := range core.Components {
		var samples []float64
		for _, a := range rep.Apps {
			for _, o := range core.Observations(a) {
				if o.Component == comp {
					samples = append(samples, float64(o.MS))
				}
			}
		}
		if len(samples) == 0 {
			continue
		}
		sort.Float64s(samples)
		sk := merged.Component(comp)
		if got, want := sk.Count(), uint64(len(samples)); got != want {
			t.Fatalf("%s: sketch count %d, samples %d", comp, got, want)
		}
		for _, p := range []float64{0.50, 0.95, 0.99} {
			got := sk.Quantile(p)
			want := exactQuantile(samples, p)
			if want == 0 {
				if got != 0 {
					t.Errorf("%s p%.0f: got %.3f, want exactly 0", comp, p*100, got)
				}
				continue
			}
			if rel := math.Abs(got-want) / want; rel > alpha+1e-9 {
				t.Errorf("%s p%.0f: sketch %.3f vs exact %.3f (rel err %.4f > alpha %.3f)",
					comp, p*100, got, want, rel, alpha)
			}
		}
	}
}

func TestSweepTableFormatAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	tr := DefaultTraceRun(12)
	tr.Seed = 23
	_, rep := tr.Run()

	table := NewSweepTable("unit sweep")
	table.Add("a", rep)
	table.Add("b", rep)

	rows := table.ComponentAcross("total")
	if len(rows) != 2 {
		t.Fatalf("ComponentAcross: %d rows, want 2", len(rows))
	}
	if rows[0].Label != "a" || rows[1].Label != "b" {
		t.Errorf("labels %q, %q", rows[0].Label, rows[1].Label)
	}
	if rows[0].Count == 0 || rows[0].Count != rows[1].Count {
		t.Errorf("counts %d, %d — same report must yield same count", rows[0].Count, rows[1].Count)
	}

	out := table.Format("total", "localization")
	for _, want := range []string{"unit sweep", "total:", "localization:", "p95ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}

	b, err := table.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, want := range []string{`"alpha"`, `"merged"`, `"label": "a"`, `"component": "total"`, `"p99_ms"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}

	// The merged rollup of two copies of the same report doubles counts.
	mc := table.Merged().Component("total").Count()
	wc := rep.Breakdown().Component("total").Count()
	if mc != 2*wc {
		t.Errorf("merged total count %d, want %d", mc, 2*wc)
	}
}

func TestFigAggregateBuilders(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	f5 := Fig5(8) // tiny sweep, still covers all sizes
	t5 := Fig5Aggregate(f5)
	if len(t5.Points) != len(f5) {
		t.Fatalf("Fig5Aggregate: %d points, want %d", len(t5.Points), len(f5))
	}
	for i, r := range f5 {
		if r.Breakdown == nil {
			t.Fatalf("Fig5 row %d has nil Breakdown", i)
		}
		if got := t5.Points[i].Label; got != sizeLabel(r.DatasetMB) {
			t.Errorf("point %d label %q", i, got)
		}
		// The figure's headline number must come from the sketch.
		if want := msToSec(r.Breakdown.Component("total").Quantile(0.95)); r.TotalP95Sec != want {
			t.Errorf("row %d TotalP95Sec %.3f, sketch says %.3f", i, r.TotalP95Sec, want)
		}
	}
	if out := t5.Format("total"); !strings.Contains(out, "total:") {
		t.Errorf("Fig5 aggregate format missing total table:\n%s", out)
	}
}
