package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// mapreduceSubmit submits an MR job and returns its app ID string.
func mapreduceSubmit(s *Scenario, cfg mapreduce.Config) string {
	return mapreduce.Submit(s.RM, s.FS, cfg).ID.String()
}

// SamplingExtensionRow is one placement policy's result in the
// distributed-scheduler extension study.
type SamplingExtensionRow struct {
	Choices  int // 1 = the paper's random placement, k = power-of-k
	Queueing stats.Summary
	Alloc    stats.Summary
	Total    stats.Summary
}

// ExtensionSampling extends the paper's Fig 7b analysis: the distributed
// scheduler's pathological queueing comes from uniformly random
// placement; Sparrow-style power-of-k-choices sampling (the related-work
// remedy the paper cites) keeps the low allocation latency while taming
// the queueing tail. Measured on the same overloaded-burst scenario as
// Fig 7b.
func ExtensionSampling(queries int) []SamplingExtensionRow {
	if queries <= 0 {
		queries = 150
	}
	rows := make([]SamplingExtensionRow, 0, 3)
	for _, k := range []int{1, 2, 4} {
		opts := DefaultOptions()
		opts.Yarn.Scheduler = yarn.SchedOpportunistic
		opts.Yarn.OppPowerOfChoices = k
		opts.Seed = 131 + uint64(k)
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		for i := 0; i < queries; i++ {
			cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			cfg.Opportunistic = true
			at := sim.Time(2*sim.Second) + sim.Time(i)*200
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
		}
		s.Run(sim.Time(3600 * sim.Second))
		rep := s.Check()
		rows = append(rows, SamplingExtensionRow{
			Choices:  k,
			Queueing: rep.Queueing.Summarize(fmt.Sprintf("queue@k=%d", k)),
			Alloc:    rep.Alloc.Summarize(fmt.Sprintf("alloc@k=%d", k)),
			Total:    rep.Total.Summarize(fmt.Sprintf("total@k=%d", k)),
		})
	}
	return rows
}

// FormatExtensionSampling renders the study.
func FormatExtensionSampling(rows []SamplingExtensionRow) string {
	var b strings.Builder
	b.WriteString("Extension — power-of-k-choices placement for the distributed scheduler (overloaded burst):\n")
	fmt.Fprintf(&b, "  %-10s %16s %16s %14s %14s\n",
		"placement", "queueing p50(s)", "queueing p95(s)", "alloc p95(ms)", "total p95(s)")
	for _, r := range rows {
		name := "random"
		if r.Choices > 1 {
			name = fmt.Sprintf("sample-%d", r.Choices)
		}
		fmt.Fprintf(&b, "  %-10s %16.1f %16.1f %14.0f %14.1f\n",
			name, msToSec(r.Queueing.P50), msToSec(r.Queueing.P95), r.Alloc.P95, msToSec(r.Total.P95))
	}
	b.WriteString("  (power-of-two keeps the latency and shrinks the queueing tail; very high k\n   herds onto momentarily-idle nodes — Sparrow's staleness pathology)\n")
	return b.String()
}

// CacheServiceResult quantifies the full §V-B proposal: a dedicated
// per-node storage class for localization plus the NM's LRU cache, under
// heavy IO interference. It reports the localization delay comparison
// and the cluster-wide cache hit rate, which SDchecker cannot mine from
// logs.
type CacheServiceResult struct {
	Baseline, WithService *core.Report
	Comparison            *core.Comparison
	HitRate               float64 // localization cache hit rate with the service
}

// ExtensionCacheService compares the default deployment against the
// proposed caching service under 100-map dfsIO interference.
func ExtensionCacheService(queries int) *CacheServiceResult {
	if queries <= 0 {
		queries = 80
	}
	run := func(dedicatedMBps float64) (*core.Report, float64) {
		tr := DefaultTraceRun(queries)
		tr.Seed = 141
		tr.Opts.Yarn.DedicatedLocalDiskMBps = dedicatedMBps
		var ifID string
		tr.Background = func(s *Scenario) {
			cfg := workload.DfsIO(100, 20)
			s.PrewarmCaches("/mr/job-" + cfg.Name + ".jar")
			app := mapreduceSubmit(s, cfg)
			ifID = app
		}
		s, rep := tr.Run()
		var hits, misses int
		for _, nm := range s.RM.NodeManagers() {
			h, m, _, _ := nm.CacheStats()
			hits += h
			misses += m
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		return rep.Filter(func(a *core.AppTrace) bool { return a.ID.String() != ifID }), rate
	}
	base, _ := run(0)
	svc, hitRate := run(1500)
	return &CacheServiceResult{
		Baseline:    base,
		WithService: svc,
		Comparison:  core.Compare("default-layout", base, "caching-service", svc),
		HitRate:     hitRate,
	}
}

// PreemptionExtensionResult measures Hadoop 3's
// guaranteed-over-opportunistic preemption: a guaranteed low-latency
// query is scheduled onto a cluster already flooded with opportunistic
// work; with preemption on, its containers evict the scavengers instead
// of competing with them.
type PreemptionExtensionResult struct {
	Off, On    *core.Report
	Comparison *core.Comparison
}

// ExtensionPreemption runs the comparison: an opportunistic burst first,
// guaranteed TPC-H queries after.
func ExtensionPreemption(queries int) *PreemptionExtensionResult {
	if queries <= 0 {
		queries = 40
	}
	run := func(preempt bool) *core.Report {
		opts := DefaultOptions()
		opts.Yarn.Scheduler = yarn.SchedOpportunistic
		opts.Yarn.PreemptOpportunistic = preempt
		opts.Seed = 151
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		flood := make(map[string]bool)
		// Opportunistic flood: enough long queries to oversubscribe vcores.
		for i := 0; i < 60; i++ {
			cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			cfg.Opportunistic = true
			at := sim.Time(1*sim.Second) + sim.Time(i)*150
			s.Eng.At(at, func() { flood[spark.Submit(s.RM, s.FS, cfg).ID.String()] = true })
		}
		// Guaranteed foreground queries arrive once the flood is running.
		for i := 0; i < queries; i++ {
			cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			at := sim.Time(40*sim.Second) + sim.Time(i)*2600
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
		}
		s.Run(sim.Time(4 * 3600 * sim.Second))
		return s.Check().Filter(func(a *core.AppTrace) bool { return !flood[a.ID.String()] })
	}
	off := run(false)
	on := run(true)
	return &PreemptionExtensionResult{
		Off: off, On: on,
		Comparison: core.Compare("no-preemption", off, "preemption", on),
	}
}
