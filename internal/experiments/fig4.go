package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig4Result reproduces Fig 4: overall scheduling delays for the long
// trace of TPC-H queries (2 GB dataset, four executors per query).
type Fig4Result struct {
	Report *core.Report

	// (a) CDFs of job runtime and each delay, milliseconds.
	CDFs map[string][]stats.CDFPoint
	// (b) Normalized delays: total/job, and am/in/out over total.
	Normalized map[string]stats.Summary
	// (c) Standard deviations per component, milliseconds.
	StdDev map[string]float64
}

// Fig4 runs the experiment. queries <= 0 uses the paper's 2000-query long
// trace; benchmarks pass smaller counts for iteration speed.
func Fig4(queries int) *Fig4Result {
	if queries <= 0 {
		queries = 2000
	}
	tr := DefaultTraceRun(queries)
	_, rep := tr.Run()
	return fig4FromReport(rep)
}

func fig4FromReport(rep *core.Report) *Fig4Result {
	const points = 50
	res := &Fig4Result{
		Report: rep,
		CDFs: map[string][]stats.CDFPoint{
			"job":   rep.Job.CDF(points),
			"total": rep.Total.CDF(points),
			"am":    rep.AM.CDF(points),
			"in":    rep.In.CDF(points),
			"out":   rep.Out.CDF(points),
		},
		Normalized: map[string]stats.Summary{
			"total/job": rep.TotalOverJob.Summarize("total/job"),
			"am/total":  rep.AMOverTotal.Summarize("am/total"),
			"in/total":  rep.InOverTotal.Summarize("in/total"),
			"out/total": rep.OutOverTotal.Summarize("out/total"),
		},
		StdDev: map[string]float64{
			"job":   rep.Job.StdDev(),
			"total": rep.Total.StdDev(),
			"am":    rep.AM.StdDev(),
			"in":    rep.In.StdDev(),
			"out":   rep.Out.StdDev(),
		},
	}
	return res
}

// Format renders the figure's three panels as text.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	b.WriteString(stats.ASCIICDF("Fig 4(a) — delay CDFs", 64, 14,
		stats.PlotSeries{Name: "job", Sample: r.Report.Job},
		stats.PlotSeries{Name: "total", Sample: r.Report.Total},
		stats.PlotSeries{Name: "am", Sample: r.Report.AM},
		stats.PlotSeries{Name: "in", Sample: r.Report.In},
		stats.PlotSeries{Name: "out", Sample: r.Report.Out}))
	b.WriteString("Fig 4(a) — overall scheduling delay percentiles (s):\n")
	fmt.Fprintf(&b, "  %-8s %8s %8s %8s\n", "series", "p50", "p95", "p99")
	for _, name := range []string{"job", "total", "am", "in", "out"} {
		var s *stats.Sample
		switch name {
		case "job":
			s = r.Report.Job
		case "total":
			s = r.Report.Total
		case "am":
			s = r.Report.AM
		case "in":
			s = r.Report.In
		case "out":
			s = r.Report.Out
		}
		fmt.Fprintf(&b, "  %-8s %8.1f %8.1f %8.1f\n", name,
			msToSec(s.Median()), msToSec(s.P95()), msToSec(s.P99()))
	}
	b.WriteString("Fig 4(b) — normalized delays:\n")
	for _, name := range []string{"total/job", "am/total", "in/total", "out/total"} {
		sm := r.Normalized[name]
		fmt.Fprintf(&b, "  %-10s p50=%.2f p95=%.2f\n", name, sm.P50, sm.P95)
	}
	b.WriteString("Fig 4(c) — standard deviation (s):\n")
	for _, name := range []string{"job", "total", "am", "in", "out"} {
		fmt.Fprintf(&b, "  %-8s %8.1f\n", name, msToSec(r.StdDev[name]))
	}
	// Aggregate critical-path attribution: which segment of the chain
	// actually gates the first task, averaged over all applications.
	if shares := r.Report.CriticalPathShares(); shares != nil {
		order := []string{"app-accept", "am-allocate", "am-acquire", "am-localize", "am-launch",
			"driver-init", "executor-allocate", "executor-acquire", "executor-localize",
			"executor-launch", "executor-wait"}
		b.WriteString("critical-path attribution (mean share of total):\n")
		for _, k := range order {
			if v, ok := shares[k]; ok {
				fmt.Fprintf(&b, "  %-18s %5.1f%%\n", k, v*100)
			}
		}
	}
	// Per-query-class spread (the "job runtime varies across different
	// queries" observation, via the mined application names).
	byName := r.Report.ByName()
	if len(byName) > 1 {
		names := make([]string, 0, len(byName))
		for k := range byName {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return byName[names[i]].P95() > byName[names[j]].P95() })
		if len(names) > 5 {
			names = names[:5]
		}
		b.WriteString("slowest query classes by total-delay p95 (s):\n")
		for _, n := range names {
			s := byName[n]
			fmt.Fprintf(&b, "  %-12s n=%-4d p50=%5.1f p95=%5.1f\n", n, s.Len(), msToSec(s.Median()), msToSec(s.P95()))
		}
	}
	return b.String()
}
