package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig13Levels are the CPU-interference intensities: the number of
// parallel Kmeans applications (each 4 executors x 16 vcores).
var Fig13Levels = []int{0, 4, 8, 16}

// Fig13Row is one interference level's result (foreground queries only).
type Fig13Row struct {
	KmeansApps int
	Report     *core.Report

	TotalP95Sec  float64
	InP95Sec     float64
	OutP95Sec    float64
	Driver       stats.Summary
	Executor     stats.Summary
	Localization stats.Summary
}

// Fig13 sweeps Kmeans CPU interference under the TPC-H foreground trace.
func Fig13(queriesPerPoint int) []Fig13Row {
	if queriesPerPoint <= 0 {
		queriesPerPoint = 120
	}
	rows := make([]Fig13Row, 0, len(Fig13Levels))
	for _, k := range Fig13Levels {
		tr := DefaultTraceRun(queriesPerPoint)
		tr.Seed = 71 + uint64(k)
		interference := make(map[string]bool)
		if k > 0 {
			kk := k
			tr.Background = func(s *Scenario) {
				for i := 0; i < kk; i++ {
					cfg := workload.KmeansConfig(400) // outlives the trace
					app := spark.Submit(s.RM, s.FS, cfg)
					interference[app.ID.String()] = true
				}
			}
		}
		// Kmeans apps never finish within the deadline; bound the run.
		tr.DeadlineSec = int64(float64(queriesPerPoint)*tr.MeanGapMs/1000) + 900
		_, rep := tr.Run()
		fg := rep.Filter(func(a *core.AppTrace) bool {
			return !interference[a.ID.String()] && a.Decomp != nil && a.Decomp.Total >= 0
		})
		rows = append(rows, Fig13Row{
			KmeansApps:   k,
			Report:       fg,
			TotalP95Sec:  msToSec(fg.Total.P95()),
			InP95Sec:     msToSec(fg.In.P95()),
			OutP95Sec:    msToSec(fg.Out.P95()),
			Driver:       fg.Driver.Summarize(fmt.Sprintf("driver@%d", k)),
			Executor:     fg.Executor.Summarize(fmt.Sprintf("exec@%d", k)),
			Localization: fg.Localization.Summarize(fmt.Sprintf("local@%d", k)),
		})
	}
	return rows
}

// FormatFig13 renders the four panels.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Fig 13 — scheduling delay under CPU interference (Kmeans apps):\n")
	fmt.Fprintf(&b, "  %-7s %12s %10s %10s %14s %14s %16s\n",
		"kmeans", "total p95(s)", "in p95(s)", "out p95(s)", "driver p95(s)", "exec p95(s)", "local p50(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7d %12.1f %10.1f %10.1f %14.1f %14.1f %16.0f\n",
			r.KmeansApps, r.TotalP95Sec, r.InP95Sec, r.OutP95Sec,
			msToSec(r.Driver.P95), msToSec(r.Executor.P95), r.Localization.P50)
	}
	if len(rows) >= 2 {
		d, h := rows[0], rows[len(rows)-1]
		fmt.Fprintf(&b, "  16-kmeans slowdown: total %.1fx, driver %.1fx, exec %.1fx, local p50 %.1fx\n",
			h.TotalP95Sec/d.TotalP95Sec,
			h.Driver.P95/nonzero(d.Driver.P95),
			h.Executor.P95/nonzero(d.Executor.P95),
			h.Localization.P50/nonzero(d.Localization.P50))
		b.WriteString("  (paper: total 1.6x; driver 2.9x; executor 2.4x; localization ~1.4x median — in-app more vulnerable than out-app)\n")
	}
	return b.String()
}
