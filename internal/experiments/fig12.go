package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig12Levels are the IO-interference intensities: the number of parallel
// dfsIO map tasks, each writing 20 GB into HDFS.
var Fig12Levels = []int{0, 25, 50, 100}

// Fig12Row is one interference level's result (foreground queries
// only). TotalP95Sec comes from the mergeable cluster sketch (same
// source as the sweep table and /aggregate); the component Summaries
// stay sample-exact.
type Fig12Row struct {
	InterferenceMaps int
	Report           *core.Report
	Breakdown        *core.ClusterBreakdown

	TotalP95Sec  float64
	InP95Sec     float64
	OutP95Sec    float64
	Localization stats.Summary
	Executor     stats.Summary
	AM           stats.Summary
}

// Fig12 sweeps dfsIO write interference under the TPC-H foreground trace.
// Interference applications are excluded from the reported metrics.
func Fig12(queriesPerPoint int) []Fig12Row {
	if queriesPerPoint <= 0 {
		queriesPerPoint = 120
	}
	// Interference levels are independent simulations; run them
	// concurrently, each writing its own row (interferenceID is
	// per-iteration state, confined to that point's goroutine).
	rows := make([]Fig12Row, len(Fig12Levels))
	concurrently(len(Fig12Levels), func(i int) {
		maps := Fig12Levels[i]
		tr := DefaultTraceRun(queriesPerPoint)
		tr.Seed = 61 + uint64(maps)
		var interferenceID string
		if maps > 0 {
			m := maps
			tr.Background = func(s *Scenario) {
				cfg := workload.DfsIO(m, 40) // sized to sustain interference across the whole trace
				s.PrewarmCaches("/mr/job-" + cfg.Name + ".jar")
				app := mapreduce.Submit(s.RM, s.FS, cfg)
				interferenceID = app.ID.String()
			}
		}
		_, rep := tr.Run()
		fg := rep.Filter(func(a *core.AppTrace) bool {
			return a.ID.String() != interferenceID
		})
		bd := fg.Breakdown()
		rows[i] = Fig12Row{
			InterferenceMaps: maps,
			Report:           fg,
			Breakdown:        bd,
			TotalP95Sec:      msToSec(bd.Component("total").Quantile(0.95)),
			InP95Sec:         msToSec(fg.In.P95()),
			OutP95Sec:        msToSec(fg.Out.P95()),
			Localization:     fg.Localization.Summarize(fmt.Sprintf("local@%d", maps)),
			Executor:         fg.Executor.Summarize(fmt.Sprintf("exec@%d", maps)),
			AM:               fg.AM.Summarize(fmt.Sprintf("am@%d", maps)),
		}
	})
	return rows
}

// FormatFig12 renders the four panels.
func FormatFig12(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString("Fig 12 — scheduling delay under IO interference (dfsIO writers):\n")
	fmt.Fprintf(&b, "  %-6s %12s %10s %10s %16s %16s %12s\n",
		"maps", "total p95(s)", "in p95(s)", "out p95(s)", "local p50(ms)", "local p95(ms)", "am p95(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %12.1f %10.1f %10.1f %16.0f %16.0f %12.1f\n",
			r.InterferenceMaps, r.TotalP95Sec, r.InP95Sec, r.OutP95Sec,
			r.Localization.P50, r.Localization.P95, msToSec(r.AM.P95))
	}
	if len(rows) >= 2 {
		d, h := rows[0], rows[len(rows)-1]
		fmt.Fprintf(&b, "  100-maps slowdown: total %.1fx, local p50 %.1fx, local p95 %.1fx, exec p95 %.1fx, am p95 %.1fx\n",
			h.TotalP95Sec/d.TotalP95Sec,
			h.Localization.P50/nonzero(d.Localization.P50),
			h.Localization.P95/nonzero(d.Localization.P95),
			h.Executor.P95/nonzero(d.Executor.P95),
			h.AM.P95/nonzero(d.AM.P95))
		b.WriteString("  (paper: total 3.9x; localization 9.4x median / 7x tail; executor 2.5-3.5x; AM up to 8x)\n")
	}
	return b.String()
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
