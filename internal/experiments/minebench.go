package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/log4j"
)

// MineBenchRow is one worker count's wall-clock measurement over the
// same log tree (best of several runs).
type MineBenchRow struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup_vs_serial"`
}

// ScanBenchRow is one matcher implementation's single-core line-scan
// measurement over the same tree: the byte-level fast path ("fast") vs
// the retained regex reference ("regex").
type ScanBenchRow struct {
	Impl         string  `json:"impl"`
	WallMS       float64 `json:"wall_ms"`
	MLinesPerSec float64 `json:"mlines_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// MineBenchResult is the parallel-mining scaling table benchall emits as
// bench_mine.json: how long SDchecker takes to mine one generated log
// tree at increasing worker counts, plus the single-core matcher
// comparison behind the parallel rows. Identical reports at every row
// (and across matcher implementations) is a precondition (checked), so
// the tables measure pure parsing speed.
type MineBenchResult struct {
	Queries     int            `json:"queries"`
	FilesParsed int            `json:"files_parsed"`
	LinesParsed int            `json:"lines_parsed"`
	Apps        int            `json:"apps"`
	Rows        []MineBenchRow `json:"rows"`

	// Scan compares the two matcher implementations on one core over the
	// identical workload; ScanSpeedup is fast's line throughput over
	// regex's. The workload is the tree's daemon logs with NoiseRatio
	// non-vocabulary chatter lines interleaved per simulator line —
	// production daemon logs are mostly IPC/audit/heartbeat noise the
	// simulator does not model, and the scan cost on exactly those lines
	// is what the byte-level matcher removes.
	Scan        []ScanBenchRow `json:"scan"`
	ScanSpeedup float64        `json:"scan_speedup"`
	NoiseRatio  int            `json:"scan_noise_ratio"`

	// NonMatchingAllocsPerLine is the measured heap cost of feeding the
	// fast-path stream one stamped line that matches no vocabulary rule —
	// the zero-allocation contract, recorded rather than assumed.
	NonMatchingAllocsPerLine float64 `json:"non_matching_allocs_per_line"`
}

// MineBench generates a TPC-H trace's log tree once, then times the
// parallel miner over it at each worker count (nil = 1, 2, 4, 8),
// verifying on the way that every parallel report is byte-identical to
// the serial one. queries <= 0 uses a small default.
func MineBench(queries int, workerCounts []int) *MineBenchResult {
	if queries <= 0 {
		queries = 60
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	tr := DefaultTraceRun(queries)
	tr.Seed = 97
	s, _ := tr.Run()

	ref, refJSON := mineRef(s.Sink)
	res := &MineBenchResult{Queries: queries, Apps: len(ref.Apps)}
	res.FilesParsed, res.LinesParsed = ref.FilesParsed, ref.LinesParsed

	var serialMS float64
	for _, w := range workerCounts {
		const reps = 3
		best := 0.0
		for r := 0; r < reps; r++ {
			rep, ms := timeMineMS(s.Sink, w)
			if r == 0 {
				got, err := rep.JSON()
				if err != nil || got != refJSON {
					panic(fmt.Sprintf("experiments: MineBench workers=%d diverges from serial report (err=%v)", w, err))
				}
			}
			if r == 0 || ms < best {
				best = ms
			}
		}
		if w == workerCounts[0] {
			serialMS = best
		}
		row := MineBenchRow{Workers: w, WallMS: best}
		if serialMS > 0 {
			row.Speedup = serialMS / best
		}
		res.Rows = append(res.Rows, row)
	}
	res.scanBench(s.Sink)
	return res
}

// scanNoise is the non-vocabulary daemon chatter interleaved into the
// scan workload: the shapes that fill real RM/NM logs (IPC handlers,
// audit records, heartbeats, monitor output) but that the simulator's
// emitters do not produce. Each costs the regex matcher a full cascade
// of failed searches and the byte matcher a few failed anchor probes.
var scanNoise = []string{
	"2017-07-02 12:53:22,505 INFO org.apache.hadoop.ipc.Server: IPC Server handler 12 on 8030, call org.apache.hadoop.yarn.server.api.ResourceTrackerPB.nodeHeartbeat from 10.1.2.7:52114 Call#8812 Retry#0",
	"2017-07-02 12:53:22,505 INFO resourcemanager.RMAuditLogger: USER=hive\tIP=10.1.2.9\tOPERATION=AM Allocated Container\tTARGET=SchedulerApp\tRESULT=SUCCESS",
	"2017-07-02 12:53:22,506 INFO monitor.ContainersMonitorImpl: Memory usage of ProcessTree 21380: 412.3 MB of 2 GB physical memory used; 2.7 GB of 4.2 GB virtual memory used",
	"2017-07-02 12:53:22,506 INFO util.AbstractLivelinessMonitor: Expired:Timer for monitoring node node07:8041 is running",
}

// scanBench times the pure line scan — daemon logs through one Parser,
// no correlation or reporting — on one core under each matcher
// implementation (best of 5). The workload is the tree's daemon logs
// with noiseRatio chatter lines (scanNoise) interleaved per simulator
// line, repeated to ~100k lines total: the simulator emits an almost
// pure vocabulary stream (≈87% of its daemon lines mine an event),
// while the production logs the paper mines are mostly non-vocabulary
// noise, and scanning noise is precisely where the matchers differ.
// Event-level equality of the two implementations is proven elsewhere
// (sdlint, the differential fuzzer, the oracle); here only the
// mined-event count is cross-checked.
func (r *MineBenchResult) scanBench(sink *log4j.Sink) {
	const noiseRatio = 3
	r.NoiseRatio = noiseRatio
	type blob struct {
		name string
		data string
	}
	var blobs []blob
	lines, noise := 0, 0
	var bytesTotal float64
	for _, f := range sink.Files() {
		if !strings.HasPrefix(f, "hadoop/") {
			continue
		}
		var b strings.Builder
		for _, l := range sink.Lines(f) {
			b.WriteString(l)
			b.WriteByte('\n')
			for k := 0; k < noiseRatio; k++ {
				b.WriteString(scanNoise[noise%len(scanNoise)])
				b.WriteByte('\n')
				noise++
			}
		}
		blobs = append(blobs, blob{name: f, data: b.String()})
		lines += len(sink.Lines(f)) * (1 + noiseRatio)
	}
	if lines == 0 {
		panic("experiments: scanBench: generated tree has no daemon logs")
	}
	reps := (100_000 + lines - 1) / lines
	for i := range blobs {
		blobs[i].data = strings.Repeat(blobs[i].data, reps)
		bytesTotal += float64(len(blobs[i].data))
	}
	lines *= reps

	var events [2]int
	for i, impl := range []string{"fast", "regex"} {
		restore := core.UseReferenceMatcher(impl == "regex")
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			p := core.NewParser()
			start := time.Now()
			for _, b := range blobs {
				if err := p.ParseReader(b.name, strings.NewReader(b.data)); err != nil {
					panic(fmt.Sprintf("experiments: scanBench(%s): %s: %v", impl, b.name, err))
				}
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if rep == 0 {
				events[i] = len(p.Events())
			}
			if rep == 0 || ms < best {
				best = ms
			}
		}
		restore()
		r.Scan = append(r.Scan, ScanBenchRow{
			Impl:         impl,
			WallMS:       best,
			MLinesPerSec: float64(lines) / best / 1000,
			MBPerSec:     bytesTotal / best / 1048.576,
		})
	}
	if events[0] != events[1] {
		panic(fmt.Sprintf("experiments: scanBench: fast mined %d events, regex %d", events[0], events[1]))
	}
	if r.Scan[1].WallMS > 0 && r.Scan[0].WallMS > 0 {
		r.ScanSpeedup = r.Scan[1].WallMS / r.Scan[0].WallMS
	}

	restore := core.UseReferenceMatcher(false)
	st := core.NewStream()
	miss := "2017-07-02 12:53:22,505 INFO org.apache.hadoop.ipc.Server: IPC Server handler 12 on 8030, call heartbeat from 10.0.0.7"
	st.Feed("hadoop/yarn-resourcemanager.log", miss)
	r.NonMatchingAllocsPerLine = testing.AllocsPerRun(2000, func() {
		st.Feed("hadoop/yarn-resourcemanager.log", miss)
	})
	restore()
}

// mineRef produces the serial reference report and its rendered JSON.
func mineRef(sink *log4j.Sink) (*core.Report, string) {
	rep, err := core.MineSink(sink, 1)
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench: %v", err))
	}
	out, err := rep.JSON()
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench JSON: %v", err))
	}
	return rep, out
}

func timeMineMS(sink *log4j.Sink, workers int) (*core.Report, float64) {
	start := time.Now()
	rep, err := core.MineSink(sink, workers)
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench: %v", err))
	}
	return rep, float64(time.Since(start).Microseconds()) / 1000
}

// Format renders the scaling table.
func (r *MineBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel mining — %d queries, %d files, %d lines, %d apps (reports byte-identical at every worker count):\n",
		r.Queries, r.FilesParsed, r.LinesParsed, r.Apps)
	fmt.Fprintf(&b, "  %-8s %12s %10s\n", "workers", "wall (ms)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %12.1f %9.2fx\n", row.Workers, row.WallMS, row.Speedup)
	}
	if len(r.Scan) > 0 {
		fmt.Fprintf(&b, "Single-core matcher comparison (identical reports checked):\n")
		fmt.Fprintf(&b, "  %-8s %12s %14s %10s\n", "impl", "wall (ms)", "Mlines/s", "MB/s")
		for _, row := range r.Scan {
			fmt.Fprintf(&b, "  %-8s %12.1f %14.2f %10.1f\n", row.Impl, row.WallMS, row.MLinesPerSec, row.MBPerSec)
		}
		fmt.Fprintf(&b, "  fast-path scan speedup: %.2fx; non-matching allocs/line: %g\n",
			r.ScanSpeedup, r.NonMatchingAllocsPerLine)
	}
	return b.String()
}

// JSON renders the result for bench_mine.json.
func (r *MineBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
