package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/log4j"
)

// MineBenchRow is one worker count's wall-clock measurement over the
// same log tree (best of several runs).
type MineBenchRow struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup_vs_serial"`
}

// MineBenchResult is the parallel-mining scaling table benchall emits as
// bench_mine.json: how long SDchecker takes to mine one generated log
// tree at increasing worker counts. Identical reports at every row is a
// precondition (checked), so the table measures pure parsing
// parallelism.
type MineBenchResult struct {
	Queries     int            `json:"queries"`
	FilesParsed int            `json:"files_parsed"`
	LinesParsed int            `json:"lines_parsed"`
	Apps        int            `json:"apps"`
	Rows        []MineBenchRow `json:"rows"`
}

// MineBench generates a TPC-H trace's log tree once, then times the
// parallel miner over it at each worker count (nil = 1, 2, 4, 8),
// verifying on the way that every parallel report is byte-identical to
// the serial one. queries <= 0 uses a small default.
func MineBench(queries int, workerCounts []int) *MineBenchResult {
	if queries <= 0 {
		queries = 60
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	tr := DefaultTraceRun(queries)
	tr.Seed = 97
	s, _ := tr.Run()

	ref, refJSON := mineRef(s.Sink)
	res := &MineBenchResult{Queries: queries, Apps: len(ref.Apps)}
	res.FilesParsed, res.LinesParsed = ref.FilesParsed, ref.LinesParsed

	var serialMS float64
	for _, w := range workerCounts {
		const reps = 3
		best := 0.0
		for r := 0; r < reps; r++ {
			rep, ms := timeMineMS(s.Sink, w)
			if r == 0 {
				got, err := rep.JSON()
				if err != nil || got != refJSON {
					panic(fmt.Sprintf("experiments: MineBench workers=%d diverges from serial report (err=%v)", w, err))
				}
			}
			if r == 0 || ms < best {
				best = ms
			}
		}
		if w == workerCounts[0] {
			serialMS = best
		}
		row := MineBenchRow{Workers: w, WallMS: best}
		if serialMS > 0 {
			row.Speedup = serialMS / best
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// mineRef produces the serial reference report and its rendered JSON.
func mineRef(sink *log4j.Sink) (*core.Report, string) {
	rep, err := core.MineSink(sink, 1)
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench: %v", err))
	}
	out, err := rep.JSON()
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench JSON: %v", err))
	}
	return rep, out
}

func timeMineMS(sink *log4j.Sink, workers int) (*core.Report, float64) {
	start := time.Now()
	rep, err := core.MineSink(sink, workers)
	if err != nil {
		panic(fmt.Sprintf("experiments: MineBench: %v", err))
	}
	return rep, float64(time.Since(start).Microseconds()) / 1000
}

// Format renders the scaling table.
func (r *MineBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel mining — %d queries, %d files, %d lines, %d apps (reports byte-identical at every worker count):\n",
		r.Queries, r.FilesParsed, r.LinesParsed, r.Apps)
	fmt.Fprintf(&b, "  %-8s %12s %10s\n", "workers", "wall (ms)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %12.1f %9.2fx\n", row.Workers, row.WallMS, row.Speedup)
	}
	return b.String()
}

// JSON renders the result for bench_mine.json.
func (r *MineBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
