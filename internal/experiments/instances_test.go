package experiments

import "repro/internal/core"

// Tiny indirections so the assertion tests read naturally.
func instSpe() core.InstanceType { return core.InstSparkExecutor }
func instMrm() core.InstanceType { return core.InstMRMaster }
