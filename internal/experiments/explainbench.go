package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
)

// ExplainBenchResult is the tail-attribution cost report benchall emits
// as bench_explain.json: what carrying exemplar reservoirs and
// heavy-hitter summaries through the observed mining pipeline costs
// against the attribution-free pipeline (the pre-attribution baseline),
// plus the attribution state's bounded footprint and the cost of
// rendering one explain report from it. AggBareMS/AggAttrMS isolate the
// aggregation stage alone — the component the attribution rides on —
// for profiling; OverheadPct is the end-to-end budget the CI smoke
// checks.
type ExplainBenchResult struct {
	Queries      int     `json:"queries"`
	Apps         int     `json:"apps"`
	Observations int     `json:"observations"`
	MineWorkers  int     `json:"mine_workers"`
	BaselineMS   float64 `json:"baseline_ms"`   // best-of-N mine+aggregate, attribution off
	AttributedMS float64 `json:"attributed_ms"` // best-of-N mine+aggregate, attribution on
	OverheadPct  float64 `json:"overhead_pct"`  // aggregation-stage delta over the end-to-end baseline
	AggBareMS    float64 `json:"agg_bare_ms"`   // aggregation stage alone, attribution off
	AggAttrMS    float64 `json:"agg_attr_ms"`   // aggregation stage alone, attribution on
	ExplainMS    float64 `json:"explain_ms"`    // one Explain render, best-of-N
	Cells        int     `json:"cells"`
	Exemplars    int     `json:"exemplars"`    // held across all reservoirs
	TopKEntries  int     `json:"topk_entries"` // held across all summaries
}

// ExplainBench generates one TPC-H trace's log tree and measures the
// full observed pipeline — parallel mine plus breakdown aggregation —
// with attribution off against attribution on (exemplar reservoirs +
// top-k heavy hitters), interleaved best-of-N with the same GC hygiene
// as PipelineBench. The contract is that the exemplar path stays within
// a few percent of the attribution-free pipeline. queries <= 0 uses a
// small default.
func ExplainBench(queries int) *ExplainBenchResult {
	if queries <= 0 {
		queries = 60
	}
	const workers = 4
	tr := DefaultTraceRun(queries)
	tr.Seed = 97
	s, _ := tr.Run()

	res := &ExplainBenchResult{Queries: queries, MineWorkers: workers}

	aggregate := func(apps []*core.AppTrace, withAttr bool) *core.ClusterBreakdown {
		cb := core.NewClusterBreakdown()
		if !withAttr {
			cb.Attr = nil // the pre-attribution baseline
		}
		for _, a := range apps {
			cb.Observe(a)
		}
		return cb
	}

	// One untimed pair warms the page cache, JIT'd regexp programs, and
	// allocator before any window is scored; best-of over the timed pairs
	// then discards runs where a GC or scheduler blip lands in one side.
	const reps = 9
	for warm := 0; warm < 2; warm++ {
		rep, err := core.MineSink(s.Sink, workers)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExplainBench warmup: %v", err))
		}
		aggregate(rep.Apps, warm == 1)
	}
	var attributed *core.ClusterBreakdown
	for r := 0; r < reps; r++ {
		// A clean heap before each pair keeps GC pauses from landing in
		// one side's window.
		runtime.GC()
		start := time.Now()
		rep, err := core.MineSink(s.Sink, workers)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExplainBench: %v", err))
		}
		aggregate(rep.Apps, false)
		baseMS := float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || baseMS < res.BaselineMS {
			res.BaselineMS = baseMS
		}
		if r == 0 {
			res.Apps = len(rep.Apps)
			for _, a := range rep.Apps {
				res.Observations += len(core.Observations(a))
			}
		}

		start = time.Now()
		rep, err = core.MineSink(s.Sink, workers)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExplainBench attributed: %v", err))
		}
		cb := aggregate(rep.Apps, true)
		attrMS := float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || attrMS < res.AttributedMS {
			res.AttributedMS = attrMS
		}
		attributed = cb

		// The aggregation stage alone, for profiling the attribution
		// delta without the parse noise.
		start = time.Now()
		aggregate(rep.Apps, false)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || ms < res.AggBareMS {
			res.AggBareMS = ms
		}
		start = time.Now()
		aggregate(rep.Apps, true)
		ms = float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || ms < res.AggAttrMS {
			res.AggAttrMS = ms
		}
	}
	// The two pipelines run identical code everywhere except the
	// aggregation stage — that is the only place attribution adds work —
	// so the end-to-end overhead is the stage delta over the end-to-end
	// baseline. Comparing two full-pipeline timings directly would put
	// the parse stage's run-to-run jitter (±10%, far above the ~3%
	// signal) on both sides of the subtraction; the stage-delta
	// estimator keeps the identical-code noise out of the numerator.
	if res.BaselineMS > 0 {
		res.OverheadPct = (res.AggAttrMS - res.AggBareMS) / res.BaselineMS * 100
	}

	// The drill-down side: footprint of the accumulated attribution
	// state and the cost of rendering one report from it.
	res.Exemplars, res.TopKEntries = attributed.AttrStats()
	for r := 0; r < reps; r++ {
		start := time.Now()
		doc := attributed.Explain("total", 0.99, core.DefaultExplainCells, nil)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || ms < res.ExplainMS {
			res.ExplainMS = ms
		}
		res.Cells = doc.CellsTotal
	}
	return res
}

// Format renders the overhead and footprint lines.
func (r *ExplainBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail attribution — %d queries, %d apps, %d observations, %d-worker mine:\n",
		r.Queries, r.Apps, r.Observations, r.MineWorkers)
	fmt.Fprintf(&b, "  pipeline bare %.1fms vs attributed %.1fms: overhead %+.1f%% (budget 5%%)\n",
		r.BaselineMS, r.AttributedMS, r.OverheadPct)
	fmt.Fprintf(&b, "  aggregation stage alone: bare %.2fms vs attributed %.2fms\n", r.AggBareMS, r.AggAttrMS)
	fmt.Fprintf(&b, "  state: %d cells (total), %d exemplars, %d top-k entries; explain render %.2fms\n",
		r.Cells, r.Exemplars, r.TopKEntries, r.ExplainMS)
	return b.String()
}

// JSON renders the result for bench_explain.json.
func (r *ExplainBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
