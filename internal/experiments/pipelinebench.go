package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// PipelineBenchResult is the self-observability cost/coverage report
// benchall emits as bench_pipeline.json: what instrumenting the mining
// pipeline costs (observed vs bare parallel mine over the same tree)
// and what it sees (per-stage batch counts and latency quantiles from a
// sharded live-ingestion pass).
type PipelineBenchResult struct {
	Queries      int             `json:"queries"`
	LinesParsed  int             `json:"lines_parsed"`
	Apps         int             `json:"apps"`
	MineWorkers  int             `json:"mine_workers"`
	BaselineMS   float64         `json:"baseline_ms"`   // best-of-N bare MineSink
	ObservedMS   float64         `json:"observed_ms"`   // best-of-N MineSinkObserved
	OverheadPct  float64         `json:"overhead_pct"`  // (observed-baseline)/baseline
	FlightEvents uint64          `json:"flight_events"` // recorded during the ingest pass
	SelfSamples  int             `json:"self_samples"`  // drained self-observations
	Stages       []obs.StageStat `json:"stages"`        // from the ingest pass
}

// PipelineBench generates one TPC-H trace's log tree, measures the
// instrumentation overhead of the observed miner against the bare one
// at the same worker count, then runs a sharded live-ingestion pass
// (scan cycles, completion hooks, the works) with a Pipeline attached
// and reports what every stage recorded. queries <= 0 uses a small
// default.
func PipelineBench(queries int) *PipelineBenchResult {
	if queries <= 0 {
		queries = 60
	}
	const workers = 4
	tr := DefaultTraceRun(queries)
	tr.Seed = 97
	s, _ := tr.Run()

	res := &PipelineBenchResult{Queries: queries, MineWorkers: workers}

	// Overhead: interleaved min-of-N. The observed run carries a live
	// Pipeline (span ring, flight recorder, self buffer all active); the
	// contract is that per-batch instrumentation stays within a few
	// percent of the bare miner. Alternating bare/observed runs and
	// taking each side's minimum squeezes out GC and scheduler noise,
	// which at tens of milliseconds otherwise dwarfs the real cost.
	const reps = 7
	minePl := obs.New(nil)
	for r := 0; r < reps; r++ {
		// A clean heap before each pair keeps GC pauses from landing in
		// one side's window.
		runtime.GC()
		start := time.Now()
		rep, err := core.MineSink(s.Sink, workers)
		if err != nil {
			panic(fmt.Sprintf("experiments: PipelineBench: %v", err))
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || ms < res.BaselineMS {
			res.BaselineMS = ms
		}
		if r == 0 {
			res.Apps = len(rep.Apps)
			res.LinesParsed = rep.LinesParsed
		}
		start = time.Now()
		if _, err := core.MineSinkObserved(s.Sink, workers, minePl); err != nil {
			panic(fmt.Sprintf("experiments: PipelineBench observed: %v", err))
		}
		ms = float64(time.Since(start).Microseconds()) / 1000
		if r == 0 || ms < res.ObservedMS {
			res.ObservedMS = ms
		}
	}
	if res.BaselineMS > 0 {
		res.OverheadPct = (res.ObservedMS - res.BaselineMS) / res.BaselineMS * 100
	}

	// Coverage: a sharded ingest pass mirroring the serve loop — scan
	// cycles over file batches, Quiesce barriers, aggregate-stage
	// completion hooks — so the stage table reflects the live pipeline,
	// not just the offline miner.
	reg := metrics.NewRegistry()
	pl := obs.New(reg)
	st := core.NewShardedStream(workers)
	defer st.Close()
	st.Instrument(reg)
	st.ObservePipeline(pl)
	st.OnComplete(func(a *core.AppTrace) {
		t := pl.Begin()
		pl.StageBatch(obs.StageAggregate, -1, t, len(core.Observations(a)))
	})

	files := s.Sink.Files()
	const cycles = 4
	per := (len(files) + cycles - 1) / cycles
	for i := 0; i < len(files); i += per {
		end := i + per
		if end > len(files) {
			end = len(files)
		}
		t := pl.Begin()
		fed := 0
		for _, f := range files[i:end] {
			sc := bufio.NewScanner(s.Sink.Reader(f))
			sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
			for sc.Scan() {
				if st.Feed(f, sc.Text()) {
					fed++
				}
			}
		}
		st.Quiesce()
		pl.StageBatch(obs.StageRead, -1, t, fed)
		pl.StageBatch(obs.StageScan, -1, t, 1)
	}
	res.SelfSamples = len(pl.DrainSelf())
	res.FlightEvents = pl.Flight().Recorded()
	res.Stages = pl.StageStats()
	return res
}

// Format renders the overhead line and the stage table.
func (r *PipelineBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline self-observability — %d queries, %d lines, %d apps, %d-worker mine:\n",
		r.Queries, r.LinesParsed, r.Apps, r.MineWorkers)
	fmt.Fprintf(&b, "  bare %.1fms vs observed %.1fms: overhead %+.1f%% (budget 5%%)\n",
		r.BaselineMS, r.ObservedMS, r.OverheadPct)
	fmt.Fprintf(&b, "  ingest pass: %d flight events, %d self-observations\n", r.FlightEvents, r.SelfSamples)
	fmt.Fprintf(&b, "  %-10s %8s %10s %10s %10s %10s\n", "stage", "batches", "items", "total ms", "p50 ms", "p99 ms")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "  %-10s %8d %10d %10.2f %10.3f %10.3f\n",
			s.Stage, s.Batches, s.Items, s.TotalMS, s.P50MS, s.P99MS)
	}
	return b.String()
}

// JSON renders the result for bench_pipeline.json.
func (r *PipelineBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
