package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/docker"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig9Result reproduces Fig 9: launching delay by instance type and by
// container runtime.
type Fig9Result struct {
	// (a) Launching delay per instance type (spm, spe, mrm, mrsm, mrsr).
	ByInstance map[core.InstanceType]stats.Summary

	// (b) Default vs Docker container runtime (Spark instances).
	DefaultLaunch stats.Summary
	DockerLaunch  stats.Summary
	DefaultCDF    []stats.CDFPoint
	DockerCDF     []stats.CDFPoint
}

// Fig9 runs a mixed Spark + MapReduce trace for the per-instance panel,
// then a Docker-runtime trace for the container-type panel.
func Fig9(appsPerKind int) *Fig9Result {
	if appsPerKind <= 0 {
		appsPerKind = 120
	}
	res := &Fig9Result{ByInstance: make(map[core.InstanceType]stats.Summary)}

	// (a) Mixed workload: alternate TPC-H queries and MR wordcount jobs.
	s := NewScenario(DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	s.PrewarmCaches("/mr/job-wc.jar")
	arrivals := trace.Arrivals(trace.Config{N: appsPerKind * 2, MeanGapMs: 2800, BurstProb: 0.2, BurstGapMs: 350, Seed: 41}, sim.Time(2*sim.Second))
	for i, at := range arrivals {
		i := i
		if i%2 == 0 {
			cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
		} else {
			cfg := mapreduce.DefaultConfig("wc", 12, 4)
			cfg.Name = "wc"
			cfg.MapInputMB = 64
			cfg.ReduceShuffleMB = 32
			s.Eng.At(at, func() { mapreduce.Submit(s.RM, s.FS, cfg) })
		}
	}
	s.Run(sim.Time(4 * 3600 * sim.Second))
	rep := s.Check()
	for inst, sample := range rep.LaunchingByInstance {
		res.ByInstance[inst] = sample.Summarize(string(inst))
	}

	// (b) Same TPC-H trace with the default and the Docker runtime.
	runRT := func(rt docker.Runtime) *core.Report {
		tr := DefaultTraceRun(appsPerKind)
		tr.Seed = 43
		tr.MutateSpark = func(q int, cfg *spark.Config) { cfg.Runtime = rt }
		_, r := tr.Run()
		return r
	}
	def := runRT(docker.RuntimeDefault)
	dock := runRT(docker.RuntimeDocker)
	res.DefaultLaunch = def.Launching.Summarize("default")
	res.DockerLaunch = dock.Launching.Summarize("docker")
	res.DefaultCDF = def.Launching.CDF(50)
	res.DockerCDF = dock.Launching.CDF(50)
	return res
}

// Format renders both panels.
func (r *Fig9Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 9(a) — launching delay by instance type (ms):\n")
	for _, inst := range []core.InstanceType{core.InstSparkDriver, core.InstSparkExecutor, core.InstMRMaster, core.InstMRMap, core.InstMRReduce} {
		sm, ok := r.ByInstance[inst]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-5s n=%-5d p50=%6.0f p95=%6.0f\n", inst, sm.Count, sm.P50, sm.P95)
	}
	b.WriteString("Fig 9(b) — launching delay by container runtime (ms):\n")
	fmt.Fprintf(&b, "  %-8s p50=%6.0f p95=%6.0f\n", "default", r.DefaultLaunch.P50, r.DefaultLaunch.P95)
	fmt.Fprintf(&b, "  %-8s p50=%6.0f p95=%6.0f\n", "docker", r.DockerLaunch.P50, r.DockerLaunch.P95)
	fmt.Fprintf(&b, "  docker overhead: +%.0fms median, +%.0fms p95 (paper: +350ms, +658ms)\n",
		r.DockerLaunch.P50-r.DefaultLaunch.P50, r.DockerLaunch.P95-r.DefaultLaunch.P95)
	return b.String()
}
