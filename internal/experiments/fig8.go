package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/yarn"
)

// Fig8SizesMB is the localized-file-size sweep: the first point is the
// default package only (~500 MB), the rest add user --files of 1-8 GB.
var Fig8SizesMB = []float64{0, 1024, 2048, 4096, 8192}

// Fig8Row is one localized-file-size result.
type Fig8Row struct {
	ExtraMB float64
	Report  *core.Report

	Localization    stats.Summary
	LocalizationCDF []stats.CDFPoint
	TotalP95Sec     float64
	// DriverLocalizationP50 stays sub-second even at 8 GB because the AM
	// container localizes only the base package (the paper's observation
	// about sub-second points in Fig 8b).
	DriverLocalizationP50 float64
}

// Fig8 sweeps the size of user-supplied localization files (spark-submit
// "--files"). These ship to executors as private resources, fetched cold
// from HDFS on every run.
func Fig8(queriesPerPoint int) []Fig8Row {
	if queriesPerPoint <= 0 {
		queriesPerPoint = 100
	}
	rows := make([]Fig8Row, 0, len(Fig8SizesMB))
	for _, extra := range Fig8SizesMB {
		tr := DefaultTraceRun(queriesPerPoint)
		tr.Seed = 31 + uint64(extra)
		// Large localizations serialize on disks; pace submissions so the
		// cluster stays moderately loaded.
		if extra >= 4096 {
			tr.MeanGapMs = 2600 * (extra / 2048)
		}
		sz := extra
		tr.MutateSpark = func(i int, cfg *spark.Config) {
			if sz > 0 {
				// spark-submit --files uploads into a per-application
				// staging directory, so every submission localizes its
				// own HDFS copy.
				cfg.ExtraFiles = []yarn.LocalResource{{
					Path:   fmt.Sprintf("/user/.sparkStaging/app-%04d/extra-%.0fMB", i, sz),
					SizeMB: sz,
					Public: false,
				}}
			}
		}
		_, rep := tr.Run()
		row := Fig8Row{
			ExtraMB:         extra,
			Report:          rep,
			Localization:    rep.Localization.Summarize(fmt.Sprintf("local@%.0fMB", extra)),
			LocalizationCDF: rep.Localization.CDF(50),
			TotalP95Sec:     msToSec(rep.Total.P95()),
		}
		if s, ok := rep.LocalizationByInstance[core.InstSparkDriver]; ok {
			row.DriverLocalizationP50 = s.Median()
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFig8 renders the sweep.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Fig 8 — localization delay vs localized file size:\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %14s %16s\n",
		"extra files", "local p50(ms)", "local p95(ms)", "total p95(s)", "driver p50(ms)")
	for _, r := range rows {
		label := "default"
		if r.ExtraMB > 0 {
			label = sizeLabel(r.ExtraMB)
		}
		fmt.Fprintf(&b, "  %-12s %14.0f %14.0f %14.1f %16.0f\n",
			label, r.Localization.P50, r.Localization.P95, r.TotalP95Sec, r.DriverLocalizationP50)
	}
	b.WriteString("  (paper: ~500ms at 500MB default, ~23s at 8GB; driver points stay <1s)\n")
	return b.String()
}
