package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestPipelineBench(t *testing.T) {
	res := PipelineBench(20)
	if res.Apps != 20 || res.LinesParsed == 0 {
		t.Fatalf("bench header %+v", res)
	}
	if res.BaselineMS <= 0 || res.ObservedMS <= 0 {
		t.Fatalf("timings missing: %+v", res)
	}
	if res.FlightEvents == 0 || res.SelfSamples == 0 {
		t.Fatalf("ingest pass recorded nothing: %+v", res)
	}

	// Every stage row present, and the stages the ingest pass exercises
	// actually recorded batches (forward only fires on adversarial
	// input, so it may legitimately be zero).
	if len(res.Stages) != len(obs.Stages) {
		t.Fatalf("stage rows = %d, want %d", len(res.Stages), len(obs.Stages))
	}
	byStage := map[string]obs.StageStat{}
	for _, s := range res.Stages {
		byStage[s.Stage] = s
	}
	for _, st := range []string{obs.StageRead, obs.StageParse, obs.StageDecompose, obs.StageAggregate, obs.StageScan} {
		if byStage[st].Batches == 0 {
			t.Errorf("stage %q recorded no batches: %+v", st, byStage[st])
		}
	}
	if byStage[obs.StageScan].Batches != 4 {
		t.Errorf("scan batches = %d, want 4 cycles", byStage[obs.StageScan].Batches)
	}

	// The JSON artifact round-trips with the fields CI's smoke step
	// greps for.
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineBenchResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.OverheadPct != res.OverheadPct || len(back.Stages) != len(res.Stages) {
		t.Fatal("bench_pipeline JSON does not round-trip")
	}
	if !strings.Contains(string(b), `"overhead_pct"`) {
		t.Fatal("JSON missing overhead_pct")
	}

	out := res.Format()
	for _, want := range []string{"overhead", "budget 5%", "aggregate", "scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
