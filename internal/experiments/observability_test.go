package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

// TestMinedSpansMatchGroundTruth runs the default scenario with the
// ground-truth recorder attached, mines the logs with SDchecker, and
// checks that every mined delay-component span falls within its
// ground-truth counterpart on the same (application, container, name)
// track — the fidelity check behind the diffable Perfetto exports.
func TestMinedSpansMatchGroundTruth(t *testing.T) {
	s := NewScenario(DefaultOptions())
	rec := s.Trace()
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 3; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		s.Eng.At(sim.Time(int64(i)*3000+1000), func() { spark.Submit(s.RM, s.FS, cfg) })
	}
	s.Run(sim.Time(1800 * sim.Second))
	rep := s.Check()

	// Ground truth, shifted onto the epoch timeline the miner works in.
	epoch := s.Opts.ClusterTS
	type key struct{ proc, track, name string }
	truth := map[key][][2]int64{}
	for _, sp := range rec.Spans() {
		k := key{sp.Process, sp.Thread, sp.Name}
		truth[k] = append(truth[k], [2]int64{epoch + int64(sp.Start), epoch + int64(sp.End)})
	}
	if len(truth) == 0 {
		t.Fatal("ground-truth recorder captured nothing")
	}

	var mined []sim.TraceSpan
	for _, a := range rep.Apps {
		mined = append(mined, core.AppSpans(a)...)
	}
	if len(mined) == 0 {
		t.Fatal("no spans mined from the logs")
	}
	seen := map[string]bool{}
	for _, m := range mined {
		seen[m.Name] = true
		k := key{m.Process, m.Thread, m.Name}
		within := false
		for _, tr := range truth[k] {
			if tr[0] <= int64(m.Start) && int64(m.End) <= tr[1] {
				within = true
				break
			}
		}
		if !within {
			t.Errorf("mined span %s/%s %q [%d, %d] not within any ground-truth span (%v)",
				m.Process, m.Thread, m.Name, m.Start, m.End, truth[k])
		}
	}
	// Both exporters must speak the full shared vocabulary for this
	// scenario, so the two trace files are diffable track-by-track.
	for _, want := range []string{
		sim.SpanAM, sim.SpanAllocation, sim.SpanAcquisition,
		sim.SpanLocalization, sim.SpanLaunching, sim.SpanDriver, sim.SpanExecutor,
	} {
		if !seen[want] {
			t.Errorf("mined trace missing span %q", want)
		}
	}
}

// TestScenarioMetricsPopulated: the default scenario's registry must see
// engine and RM activity without any extra wiring.
func TestScenarioMetricsPopulated(t *testing.T) {
	s := NewScenario(DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	spark.Submit(s.RM, s.FS, spark.DefaultConfig(workload.TPCHQuery(6, 2048, tables)))
	s.Run(sim.Time(600 * sim.Second))

	vals := map[string]int64{}
	for _, snap := range s.Metrics.Snapshot() {
		vals[snap.Name] += snap.Value
	}
	for _, name := range []string{
		"sim_events_fired_total",
		"yarn_rm_heartbeats_total",
		"yarn_rm_allocations_total",
		"yarn_nm_heartbeats_total",
		"yarn_nm_container_transitions_total",
	} {
		if vals[name] <= 0 {
			t.Errorf("metric %s not populated (got %d)", name, vals[name])
		}
	}
	if vals["yarn_rm_allocations_total"] != int64(s.RM.AllocatedTotal) {
		t.Errorf("allocations counter %d != RM.AllocatedTotal %d",
			vals["yarn_rm_allocations_total"], s.RM.AllocatedTotal)
	}
}
