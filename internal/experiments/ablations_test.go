package experiments

import "testing"

func TestAblationHeartbeat(t *testing.T) {
	if testing.Short() {
		t.Skip("load run")
	}
	rows := AblationHeartbeat()
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Acquisition.P95 <= rows[i-1].Acquisition.P95 {
			t.Errorf("acquisition p95 not monotone in heartbeat interval: %+v vs %+v",
				rows[i].Acquisition, rows[i-1].Acquisition)
		}
	}
	// The delay is capped by the interval itself.
	for _, r := range rows {
		if r.Acquisition.Max > float64(r.IntervalMs)+150 {
			t.Errorf("acquisition max %.0fms exceeds the %dms heartbeat cap", r.Acquisition.Max, r.IntervalMs)
		}
	}
	_ = FormatAblationHeartbeat(rows)
}

func TestAblationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	rows := AblationGate(60)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// A stricter gate cannot make the executor delay smaller.
	if rows[2].Executor.P95 < rows[0].Executor.P95-300 {
		t.Errorf("gate 1.0 exec p95 %.0f below gate 0.5's %.0f", rows[2].Executor.P95, rows[0].Executor.P95)
	}
	_ = FormatAblationGate(rows)
}

func TestAblationJVMReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	res := AblationJVMReuse(60)
	launch := res.Comparison.Row("launching")
	if launch == nil || launch.SpeedupP50 < 1.5 {
		t.Errorf("JVM reuse launching speedup %+v, want >=1.5x", launch)
	}
	driver := res.Comparison.Row("driver")
	if driver == nil || driver.SpeedupP50 <= 1.0 {
		t.Errorf("JVM reuse driver speedup %+v, want >1x (warm-up skipped)", driver)
	}
	total := res.Comparison.Row("total")
	if total == nil || total.SpeedupP50 <= 1.0 {
		t.Errorf("JVM reuse total speedup %+v, want >1x", total)
	}
}

func TestAblationDedicatedDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("interference run")
	}
	res := AblationDedicatedDisk(60)
	local := res.Comparison.Row("localization")
	if local == nil || local.SpeedupP50 < 1.5 {
		t.Errorf("dedicated localization disk speedup %+v, want >=1.5x under dfsIO (paper §V-B)", local)
	}
}

func TestAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed workload run")
	}
	res := AblationOrdering(50)
	alloc := res.Comparison.Row("alloc")
	if alloc == nil || alloc.SpeedupP95 <= 1.0 {
		t.Errorf("fair ordering alloc speedup %+v, want >1x behind a large job", alloc)
	}
}
