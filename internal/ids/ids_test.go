package ids

import (
	"testing"
	"testing/quick"
)

func TestAppIDString(t *testing.T) {
	id := AppID{ClusterTS: 1499000000000, Seq: 42}
	if got := id.String(); got != "application_1499000000000_0042" {
		t.Fatalf("got %q", got)
	}
}

func TestContainerIDString(t *testing.T) {
	c := ContainerID{App: AppID{ClusterTS: 1499000000000, Seq: 7}, Attempt: 1, Num: 3}
	if got := c.String(); got != "container_1499000000000_0007_01_000003" {
		t.Fatalf("got %q", got)
	}
}

func TestAttemptIDString(t *testing.T) {
	a := AttemptID{App: AppID{ClusterTS: 99, Seq: 2}, Attempt: 1}
	if got := a.String(); got != "appattempt_99_0002_000001" {
		t.Fatalf("got %q", got)
	}
}

func TestParseAppIDRoundTrip(t *testing.T) {
	f := func(ts uint32, seq uint16) bool {
		id := AppID{ClusterTS: int64(ts), Seq: int(seq)}
		got, err := ParseAppID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseContainerIDRoundTrip(t *testing.T) {
	f := func(ts uint32, seq uint16, num uint16) bool {
		c := ContainerID{App: AppID{ClusterTS: int64(ts), Seq: int(seq)}, Attempt: 1, Num: int(num)}
		got, err := ParseContainerID(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "application_1", "app_1_2", "application_x_0001", "application_1_y"} {
		if _, err := ParseAppID(bad); err == nil {
			t.Errorf("ParseAppID(%q) accepted", bad)
		}
	}
	for _, bad := range []string{"", "container_1_2_3", "container_x_0001_01_000001", "application_1499_0001"} {
		if _, err := ParseContainerID(bad); err == nil {
			t.Errorf("ParseContainerID(%q) accepted", bad)
		}
	}
}

func TestIsAM(t *testing.T) {
	am := ContainerID{Num: 1}
	if !am.IsAM() {
		t.Fatal("container 1 should be the AM")
	}
	if (ContainerID{Num: 2}).IsAM() {
		t.Fatal("container 2 is not the AM")
	}
}

func TestFactorySequences(t *testing.T) {
	f := NewFactory(1499000000000)
	a1 := f.NewApp()
	a2 := f.NewApp()
	if a1.Seq != 1 || a2.Seq != 2 {
		t.Fatalf("app seqs %d,%d", a1.Seq, a2.Seq)
	}
	c1 := f.NewContainer(a1)
	c2 := f.NewContainer(a1)
	cb := f.NewContainer(a2)
	if c1.Num != 1 || c2.Num != 2 || cb.Num != 1 {
		t.Fatalf("container nums %d,%d,%d", c1.Num, c2.Num, cb.Num)
	}
	if !c1.IsAM() {
		t.Fatal("first container of an app must be the AM")
	}
	if f.ClusterTS() != 1499000000000 {
		t.Fatal("cluster timestamp lost")
	}
}

func TestFactoryUnknownApp(t *testing.T) {
	f := NewFactory(1)
	// Containers for an app the factory never issued still number from 1.
	c := f.NewContainer(AppID{ClusterTS: 1, Seq: 99})
	if c.Num != 1 {
		t.Fatalf("num=%d", c.Num)
	}
}

func TestZeroChecks(t *testing.T) {
	if !(AppID{}).IsZero() || !(ContainerID{}).IsZero() {
		t.Fatal("zero values must report IsZero")
	}
	if (AppID{Seq: 1}).IsZero() {
		t.Fatal("non-zero app reported zero")
	}
}
