// Package ids formats and parses YARN-style global identifiers. These IDs
// are the join keys SDchecker uses to correlate log lines emitted by
// different daemons: the ResourceManager logs container allocation, a
// NodeManager logs the same container's localization, and the Spark
// executor running inside it logs the first task — all carrying the same
// container ID.
package ids

import (
	"fmt"
	"strconv"
	"strings"
)

// AppID identifies one submitted application, e.g.
// "application_1499000000000_0042".
type AppID struct {
	ClusterTS int64 // ResourceManager start timestamp (epoch millis)
	Seq       int   // 1-based submission sequence number
}

// String renders the canonical YARN form.
func (a AppID) String() string {
	return fmt.Sprintf("application_%d_%04d", a.ClusterTS, a.Seq)
}

// IsZero reports whether the ID is unset.
func (a AppID) IsZero() bool { return a.ClusterTS == 0 && a.Seq == 0 }

// AttemptID identifies an application attempt, e.g.
// "appattempt_1499000000000_0042_000001".
type AttemptID struct {
	App     AppID
	Attempt int
}

// String renders the canonical YARN form.
func (a AttemptID) String() string {
	return fmt.Sprintf("appattempt_%d_%04d_%06d", a.App.ClusterTS, a.App.Seq, a.Attempt)
}

// ContainerID identifies one container, e.g.
// "container_1499000000000_0042_01_000003". Container number 1 is by YARN
// convention the ApplicationMaster's container.
type ContainerID struct {
	App     AppID
	Attempt int
	Num     int // 1-based within the attempt
}

// String renders the canonical YARN form.
func (c ContainerID) String() string {
	return fmt.Sprintf("container_%d_%04d_%02d_%06d", c.App.ClusterTS, c.App.Seq, c.Attempt, c.Num)
}

// IsZero reports whether the ID is unset.
func (c ContainerID) IsZero() bool { return c.App.IsZero() && c.Num == 0 }

// IsAM reports whether this is the ApplicationMaster container.
func (c ContainerID) IsAM() bool { return c.Num == 1 }

// ParseAppID parses the canonical form produced by AppID.String.
func ParseAppID(s string) (AppID, error) {
	parts := strings.Split(s, "_")
	if len(parts) != 3 || parts[0] != "application" {
		return AppID{}, fmt.Errorf("ids: malformed application id %q", s)
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return AppID{}, fmt.Errorf("ids: bad cluster timestamp in %q: %v", s, err)
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil {
		return AppID{}, fmt.Errorf("ids: bad sequence in %q: %v", s, err)
	}
	return AppID{ClusterTS: ts, Seq: seq}, nil
}

// ParseContainerID parses the canonical form produced by
// ContainerID.String.
func ParseContainerID(s string) (ContainerID, error) {
	parts := strings.Split(s, "_")
	if len(parts) != 5 || parts[0] != "container" {
		return ContainerID{}, fmt.Errorf("ids: malformed container id %q", s)
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return ContainerID{}, fmt.Errorf("ids: bad cluster timestamp in %q: %v", s, err)
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil {
		return ContainerID{}, fmt.Errorf("ids: bad app sequence in %q: %v", s, err)
	}
	attempt, err := strconv.Atoi(parts[3])
	if err != nil {
		return ContainerID{}, fmt.Errorf("ids: bad attempt in %q: %v", s, err)
	}
	num, err := strconv.Atoi(parts[4])
	if err != nil {
		return ContainerID{}, fmt.Errorf("ids: bad container number in %q: %v", s, err)
	}
	return ContainerID{App: AppID{ClusterTS: ts, Seq: seq}, Attempt: attempt, Num: num}, nil
}

// Factory hands out sequential application and container IDs, mirroring
// the counters inside the ResourceManager.
type Factory struct {
	clusterTS int64
	nextApp   int
	nextCont  map[AppID]int
}

// NewFactory creates a factory for a cluster started at the given epoch
// millisecond timestamp.
func NewFactory(clusterTS int64) *Factory {
	return &Factory{clusterTS: clusterTS, nextApp: 1, nextCont: make(map[AppID]int)}
}

// ClusterTS returns the cluster timestamp embedded in all IDs.
func (f *Factory) ClusterTS() int64 { return f.clusterTS }

// NewApp allocates the next application ID.
func (f *Factory) NewApp() AppID {
	id := AppID{ClusterTS: f.clusterTS, Seq: f.nextApp}
	f.nextApp++
	f.nextCont[id] = 1
	return id
}

// NewContainer allocates the next container ID for app (attempt 1).
func (f *Factory) NewContainer(app AppID) ContainerID {
	n := f.nextCont[app]
	if n == 0 {
		n = 1
	}
	f.nextCont[app] = n + 1
	return ContainerID{App: app, Attempt: 1, Num: n}
}
