// Package mapreduce models MapReduce-on-YARN applications. The paper uses
// them in three roles: wordcount as the cluster-load generator for the
// container-throughput study (Table II) and the acquisition-delay study
// (Fig 7c), dfsIO as the HDFS write interference for Fig 12, and the MR
// instance types (mrm/mrsm/mrsr) in the launch-delay breakdown of Fig 9a.
//
// Unlike Spark, the MR ApplicationMaster heartbeats the ResourceManager at
// a fixed 1000 ms interval with no backoff — which is exactly why the
// paper finds container acquisition delay "capped by one second, the
// default heartbeat interval for MapReduce".
package mapreduce

import (
	"fmt"

	"repro/internal/docker"
	"repro/internal/hdfs"
	"repro/internal/ids"
	"repro/internal/jvm"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// Logging class names for MR container stderr files.
const (
	ClassMRAppMaster = "org.apache.hadoop.mapreduce.v2.app.MRAppMaster"
	ClassYarnChild   = "org.apache.hadoop.mapred.YarnChild"
	ClassRMComm      = "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator"
)

// Config describes one MapReduce job.
type Config struct {
	Name    string
	Maps    int
	Reduces int

	MapProfile    yarn.Profile
	ReduceProfile yarn.Profile

	// Map work: optional HDFS input read, CPU, optional HDFS write (the
	// dfsIO interference pattern writes MapWriteMB and reads nothing).
	MapInputMB float64
	InputPath  string
	MapCPUSec  float64
	MapWriteMB float64

	// Reduce work: shuffle read (remote) then CPU.
	ReduceShuffleMB float64
	ReduceCPUSec    float64

	Runtime docker.Runtime
	// JVMReuse launches task JVMs in reuse mode (uber/JVM-reuse configs),
	// used by the throughput workload where tasks are tiny.
	JVMReuse bool
	// MaxConcurrentMaps caps in-flight map containers (the effect of the
	// Capacity Scheduler's user limit); 0 = request everything at once.
	// The Table II experiment uses it to pin cluster load at 10/40/70/100%.
	MaxConcurrentMaps int

	MasterJVM jvm.Model
	TaskJVM   jvm.Model
}

// DefaultConfig returns a wordcount-shaped job.
func DefaultConfig(name string, maps, reduces int) Config {
	return Config{
		Name:          name,
		Maps:          maps,
		Reduces:       reduces,
		MapProfile:    yarn.Profile{VCores: 1, MemoryMB: 1024},
		ReduceProfile: yarn.Profile{VCores: 1, MemoryMB: 2048},
		MapInputMB:    64,
		MapCPUSec:     0.6,
		ReduceCPUSec:  1.2,
		MasterJVM:     jvm.MapReduceMaster(),
		TaskJVM:       jvm.MapReduceTask(),
	}
}

// App is a submitted MapReduce job.
type App struct {
	ID  ids.AppID
	rm  *yarn.RM
	fs  *hdfs.FS
	cfg Config

	am *appMaster

	// OnFinished fires when the job completes.
	OnFinished func(at sim.Time)
}

// Submit submits the job to the default queue; YARN will allocate and
// launch the MRAppMaster.
func Submit(rm *yarn.RM, fs *hdfs.FS, cfg Config) *App {
	return SubmitToQueue(rm, fs, cfg, "")
}

// SubmitToQueue submits the job to a named Capacity Scheduler queue.
func SubmitToQueue(rm *yarn.RM, fs *hdfs.FS, cfg Config, queue string) *App {
	if cfg.Maps <= 0 {
		panic("mapreduce: need at least one map")
	}
	a := &App{rm: rm, fs: fs, cfg: cfg}
	a.am = &appMaster{app: a}
	a.ID = rm.Submit(yarn.AppSpec{
		Name:  cfg.Name,
		Type:  "MAPREDUCE",
		Queue: queue,
		AMLaunch: yarn.LaunchSpec{
			Resources: []yarn.LocalResource{{Path: "/mr/hadoop-mapreduce.tar.gz", SizeMB: 280, Public: true}},
			Instance:  yarn.InstMRMaster,
			Runtime:   cfg.Runtime,
			Process:   a.am,
		},
	})
	return a
}

// Finished reports job completion.
func (a *App) Finished() bool { return a.am.finished }

// appMaster is the MRAppMaster process.
type appMaster struct {
	app *App
	env *yarn.ProcessEnv

	log      logf
	allocLog logf

	phase        int // 0 = maps, 1 = reduces, 2 = done
	mapsAsked    int
	mapsDone     int
	reducesDone  int
	launchedMaps int
	launchedRed  int
	finished     bool
	hb           *sim.Ticker
}

type logf interface {
	Infof(format string, args ...any)
}

// Launched boots the AM JVM, registers, and starts the fixed-interval
// allocator heartbeat.
func (m *appMaster) Launched(env *yarn.ProcessEnv) {
	m.env = env
	m.log = env.Logger(ClassMRAppMaster)
	m.allocLog = env.Logger(ClassRMComm)
	m.app.cfg.MasterJVM.Boot(env.Eng, env.Node, env.Rng, env.JVMReuse,
		func() {
			m.log.Infof("Created MRAppMaster for application %s", m.app.ID)
			env.MarkFirstLog()
		},
		func() {
			// Job init (split computation, output committer setup).
			env.Node.Compute(0.5, 1, func(sim.Time) {
				m.log.Infof("Registered with the ResourceManager")
				m.app.rm.RegisterAttempt(m.app.ID)
				m.app.rm.SetFailureHandler(m.app.ID, m.onContainerFailed)
				m.askMaps()
				m.hb = sim.NewTicker(env.Eng, m.app.rm.Cfg.AMHeartbeatMs, int64(env.Rng.Intn(200)), m.heartbeat)
			})
		})
}

// askMaps requests map containers, respecting the concurrency window.
func (m *appMaster) askMaps() {
	cfg := m.app.cfg
	want := cfg.Maps - m.mapsAsked
	if cfg.MaxConcurrentMaps > 0 {
		inFlight := m.mapsAsked - m.mapsDone
		if room := cfg.MaxConcurrentMaps - inFlight; room < want {
			want = room
		}
	}
	if want <= 0 {
		return
	}
	m.allocLog.Infof("Requesting %d map containers", want)
	m.app.rm.Ask(m.app.ID, want, cfg.MapProfile)
	m.mapsAsked += want
}

// heartbeat pulls granted containers at the fixed MR cadence; the time a
// container waits allocated-but-unpulled is Fig 7c's acquisition delay.
func (m *appMaster) heartbeat() {
	if m.finished {
		return
	}
	for _, al := range m.app.rm.Pull(m.app.ID) {
		m.startTask(al)
	}
	if m.phase == 0 {
		m.askMaps()
	}
}

func (m *appMaster) startTask(al *yarn.Allocation) {
	var t *task
	if m.phase == 0 {
		m.launchedMaps++
		t = &task{am: m, reduce: false, idx: m.launchedMaps}
	} else {
		m.launchedRed++
		t = &task{am: m, reduce: true, idx: m.launchedRed}
	}
	inst := yarn.InstMRMap
	if t.reduce {
		inst = yarn.InstMRReduce
	}
	al.Node.StartContainer(al, yarn.LaunchSpec{
		Resources: []yarn.LocalResource{{Path: "/mr/job-" + m.app.cfg.Name + ".jar", SizeMB: 12, Public: true}},
		Instance:  inst,
		Runtime:   m.app.cfg.Runtime,
		Process:   t,
	})
}

// onContainerFailed writes off a failed task container so the ask window
// re-requests it (MR reschedules failed attempts).
func (m *appMaster) onContainerFailed(al *yarn.Allocation) {
	if m.finished {
		return
	}
	m.allocLog.Infof("Container %s failed to launch; rescheduling the attempt", al.Container)
	if al.Profile == m.app.cfg.ReduceProfile && m.phase == 1 {
		m.launchedRed--
		m.app.rm.Ask(m.app.ID, 1, m.app.cfg.ReduceProfile)
		return
	}
	m.launchedMaps--
	m.mapsAsked--
	m.askMaps()
}

func (m *appMaster) taskFinished(t *task) {
	if t.reduce {
		m.reducesDone++
		if m.reducesDone >= m.app.cfg.Reduces {
			m.finishJob()
		}
		return
	}
	m.mapsDone++
	if m.mapsDone < m.app.cfg.Maps {
		return
	}
	if m.app.cfg.Reduces <= 0 {
		m.finishJob()
		return
	}
	m.phase = 1
	m.allocLog.Infof("Requesting %d reduce containers", m.app.cfg.Reduces)
	m.app.rm.Ask(m.app.ID, m.app.cfg.Reduces, m.app.cfg.ReduceProfile)
}

func (m *appMaster) finishJob() {
	if m.finished {
		return
	}
	m.finished = true
	m.phase = 2
	if m.hb != nil {
		m.hb.Stop()
	}
	m.log.Infof("Job %s completed successfully: %d maps, %d reduces",
		m.app.cfg.Name, m.mapsDone, m.reducesDone)
	m.app.rm.FinishApp(m.app.ID)
	if m.app.OnFinished != nil {
		m.app.OnFinished(m.env.Eng.Now())
	}
	m.env.Exit()
}

// task is a YarnChild process running one map or reduce attempt.
type task struct {
	am     *appMaster
	reduce bool
	idx    int
	env    *yarn.ProcessEnv
	log    logf
}

// Launched boots the task JVM and runs the attempt.
func (t *task) Launched(env *yarn.ProcessEnv) {
	t.env = env
	t.log = env.Logger(ClassYarnChild)
	cfg := t.am.app.cfg
	kind := "MAP"
	if t.reduce {
		kind = "REDUCE"
	}
	reuse := env.JVMReuse || cfg.JVMReuse
	cfg.TaskJVM.Boot(env.Eng, env.Node, env.Rng, reuse,
		func() {
			t.log.Infof("Starting %s task attempt_%d_%04d_%06d_0",
				kind, t.am.app.ID.ClusterTS, t.am.app.ID.Seq, t.idx)
			env.MarkFirstLog()
		},
		t.run)
}

func (t *task) run() {
	if t.reduce {
		t.runReduce()
		return
	}
	cfg := t.am.app.cfg
	afterRead := func(sim.Time) {
		t.env.Node.Compute(cfg.MapCPUSec, 1, func(sim.Time) {
			if cfg.MapWriteMB > 0 {
				out := fmt.Sprintf("/out/%s/map-%d-%d", cfg.Name, t.am.app.ID.Seq, t.idx)
				t.am.app.fs.Write(t.env.Node, out, cfg.MapWriteMB, t.finish)
				return
			}
			t.finish(t.env.Eng.Now())
		})
	}
	switch {
	case cfg.MapInputMB <= 0:
		afterRead(t.env.Eng.Now())
	case cfg.InputPath != "":
		f := t.am.app.fs.Lookup(cfg.InputPath)
		if f == nil {
			f = t.am.app.fs.Create(cfg.InputPath, cfg.MapInputMB*float64(cfg.Maps), nil)
		}
		t.am.app.fs.ReadData(t.env.Node, f, cfg.MapInputMB, afterRead)
	default:
		t.am.app.fs.ReadAnonymous(t.env.Node, cfg.MapInputMB, afterRead)
	}
}

func (t *task) runReduce() {
	cfg := t.am.app.cfg
	afterShuffle := func(sim.Time) {
		t.env.Node.Compute(cfg.ReduceCPUSec, 1, func(sim.Time) {
			t.finish(t.env.Eng.Now())
		})
	}
	if cfg.ReduceShuffleMB > 0 {
		t.am.app.fs.ReadAnonymous(t.env.Node, cfg.ReduceShuffleMB, afterShuffle)
		return
	}
	afterShuffle(t.env.Eng.Now())
}

func (t *task) finish(sim.Time) {
	t.log.Infof("Task done, committing output")
	t.env.Exit()
	t.am.taskFinished(t)
}
