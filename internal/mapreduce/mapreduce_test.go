package mapreduce_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

func bed(t *testing.T, mutate func(*yarn.Config)) *testkit.Bed {
	t.Helper()
	b := testkit.New(testkit.Options{Workers: 4, Yarn: mutate})
	b.Prewarm(map[string]float64{
		"/mr/hadoop-mapreduce.tar.gz": 280,
		"/mr/job-wc.jar":              12,
	})
	return b
}

func runJob(t *testing.T, b *testkit.Bed, cfg mapreduce.Config, deadline int64) *mapreduce.App {
	t.Helper()
	app := mapreduce.Submit(b.RM, b.FS, cfg)
	b.Run(deadline)
	if !app.Finished() {
		t.Fatal("MR job did not finish")
	}
	return app
}

func TestWordcountCompletes(t *testing.T) {
	b := bed(t, func(c *yarn.Config) { c.LocalityDelayMaxBeats = 0 })
	cfg := mapreduce.DefaultConfig("wc", 8, 2)
	cfg.Name = "wc"
	cfg.MapInputMB = 32
	cfg.ReduceShuffleMB = 16
	runJob(t, b, cfg, 1800)

	var nmAll string
	for _, f := range b.Sink.Files() {
		if strings.Contains(f, "nodemanager") {
			nmAll += strings.Join(b.Lines(f), "\n")
		}
	}
	// 1 AM + 8 maps + 2 reduces = 11 container lifecycles.
	if got := strings.Count(nmAll, "from RUNNING to EXITED_WITH_SUCCESS"); got != 11 {
		t.Fatalf("%d containers exited, want 11", got)
	}
}

func TestReducesStartAfterAllMaps(t *testing.T) {
	b := bed(t, func(c *yarn.Config) { c.LocalityDelayMaxBeats = 0 })
	cfg := mapreduce.DefaultConfig("wc", 4, 1)
	cfg.Name = "wc"
	runJob(t, b, cfg, 1800)

	// Instance types come from the container stderr first lines.
	chk := core.New()
	if err := chk.AddSink(b.Sink); err != nil {
		t.Fatal(err)
	}
	rep := chk.Analyze()
	app := rep.Apps[0]
	var lastMapExit, firstReduceLog int64
	for _, c := range app.Containers {
		switch c.Instance {
		case core.InstMRMap:
			if c.Exited > lastMapExit {
				lastMapExit = c.Exited
			}
		case core.InstMRReduce:
			if firstReduceLog == 0 || c.FirstLog < firstReduceLog {
				firstReduceLog = c.FirstLog
			}
		}
	}
	if lastMapExit == 0 || firstReduceLog == 0 {
		t.Fatal("map/reduce containers not classified from logs")
	}
	if firstReduceLog < lastMapExit {
		t.Fatalf("reduce started at %d before last map exit %d", firstReduceLog, lastMapExit)
	}
}

func TestConcurrencyWindowCapsInFlight(t *testing.T) {
	b := bed(t, func(c *yarn.Config) {
		c.LocalityDelayMaxBeats = 0
		c.MaxAssignPerHeartbeat = 0
	})
	cfg := mapreduce.DefaultConfig("wc", 24, 0)
	cfg.Name = "wc"
	cfg.MapCPUSec = 1.5
	cfg.MaxConcurrentMaps = 4

	app := mapreduce.Submit(b.RM, b.FS, cfg)
	peak := 0
	sim.NewTicker(b.Eng, 200, 100, func() {
		running := 0
		for _, nm := range b.NMs {
			running += nm.RunningContainers()
		}
		if running > peak {
			peak = running
		}
	})
	b.Run(3600)
	if !app.Finished() {
		t.Fatal("job did not finish")
	}
	// Window 4 maps + 1 AM container; allow one in-flight transition.
	if peak > 6 {
		t.Fatalf("peak concurrent containers %d, want <= window+AM", peak)
	}
}

func TestAcquisitionCappedByAMHeartbeat(t *testing.T) {
	b := bed(t, func(c *yarn.Config) {
		c.LocalityDelayMaxBeats = 0
		c.AMHeartbeatMs = 1000
	})
	cfg := mapreduce.DefaultConfig("wc", 12, 0)
	cfg.Name = "wc"
	runJob(t, b, cfg, 1800)

	chk := core.New()
	if err := chk.AddSink(b.Sink); err != nil {
		t.Fatal(err)
	}
	rep := chk.Analyze()
	d := rep.Apps[0].Decomp
	if len(d.Acquisitions) == 0 {
		t.Fatal("no acquisition delays mined")
	}
	for _, a := range d.Acquisitions {
		if a.MS > 1100 {
			t.Fatalf("acquisition %dms exceeds the 1s AM heartbeat cap (Fig 7c)", a.MS)
		}
	}
}

func TestDfsIOWritesLoadDisks(t *testing.T) {
	b := bed(t, func(c *yarn.Config) { c.LocalityDelayMaxBeats = 0 })
	cfg := mapreduce.DefaultConfig("dfsio", 3, 0)
	cfg.Name = "dfsio"
	cfg.MapInputMB = 0
	cfg.MapWriteMB = 2000
	runJob(t, b, cfg, 3600)
	var busy float64
	for _, n := range b.Cl.Nodes {
		busy += n.Disk.BusyUnitMillis()
	}
	// 3 maps x 2000 MB x 3 replicas = 18 GB of disk work minimum.
	if busy < 17_000_000 {
		t.Fatalf("disks moved %.0f unit-ms, want >= 18GB of replica writes", busy)
	}
}

func TestZeroMapsPanics(t *testing.T) {
	b := bed(t, nil)
	defer func() {
		if recover() == nil {
			t.Error("zero maps did not panic")
		}
	}()
	mapreduce.Submit(b.RM, b.FS, mapreduce.DefaultConfig("x", 0, 0))
}
