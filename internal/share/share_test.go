package share

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSingleJobDuration(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100) // 100 units/s
	var done sim.Time
	r.Start(50, 1000, func(at sim.Time) { done = at }) // capped by capacity
	eng.Run()
	if done != 500 {
		t.Fatalf("50 units at 100/s finished at %dms, want 500", done)
	}
}

func TestDemandCapLimitsRate(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var done sim.Time
	r.Start(50, 25, func(at sim.Time) { done = at }) // demand 25 < capacity
	eng.Run()
	if done != 2000 {
		t.Fatalf("demand-capped job finished at %dms, want 2000", done)
	}
}

func TestEqualSharing(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var d1, d2 sim.Time
	r.Start(50, 1000, func(at sim.Time) { d1 = at })
	r.Start(50, 1000, func(at sim.Time) { d2 = at })
	eng.Run()
	// Two equal jobs share 100/s: each runs at 50/s -> 1000 ms.
	if d1 != 1000 || d2 != 1000 {
		t.Fatalf("equal jobs finished at %d/%d ms, want 1000/1000", d1, d2)
	}
}

func TestProportionalSharingByDemand(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var small, big sim.Time
	// Demands 10 vs 1000 on capacity 100: shares split ~1:100.
	r.Start(10, 10, func(at sim.Time) { small = at })
	r.Start(90, 1000, func(at sim.Time) { big = at })
	eng.Run()
	// Big: 90 units at ~99/s -> ~909 ms. Small: ~0.9 units done by then,
	// remaining 9.1 at its full demand 10/s -> ~1819 ms.
	if big < 900 || big > 920 {
		t.Fatalf("big job finished at %dms, want ~909", big)
	}
	if small < 1800 || small > 1840 {
		t.Fatalf("small job finished at %dms, want ~1819", small)
	}
}

func TestLateArrivalSlowsExisting(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var d1 sim.Time
	r.Start(100, 1000, func(at sim.Time) { d1 = at })
	eng.At(500, func() {
		r.Start(1000, 1000, func(sim.Time) {})
	})
	eng.RunUntil(10_000)
	// First job: 50 units in first 500ms, remaining 50 at 50/s -> 1000ms
	// more: total 1500ms.
	if d1 != 1500 {
		t.Fatalf("preempted job finished at %dms, want 1500", d1)
	}
}

func TestCancelStopsJob(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	fired := false
	j := r.Start(1000, 100, func(sim.Time) { fired = true })
	eng.At(100, func() { r.Cancel(j) })
	eng.Run()
	if fired {
		t.Fatal("cancelled job completed")
	}
	if r.Active() != 0 {
		t.Fatalf("cancelled job still active")
	}
	r.Cancel(j) // idempotent
	r.Cancel(nil)
}

func TestCancelFreesCapacityForOthers(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var d sim.Time
	j := r.Start(1000, 1000, func(sim.Time) {})
	r.Start(100, 1000, func(at sim.Time) { d = at })
	eng.At(1000, func() { r.Cancel(j) })
	eng.Run()
	// Second job: 50 units in first 1000ms (sharing), then full rate:
	// remaining 50 at 100/s -> +500ms = 1500ms.
	if d != 1500 {
		t.Fatalf("survivor finished at %dms, want 1500", d)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	var done bool
	r.Start(0, 10, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-work job never completed")
	}
}

func TestInvalidJobPanics(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	defer func() {
		if recover() == nil {
			t.Error("non-positive demand did not panic")
		}
	}()
	r.Start(10, 0, nil)
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(sim.NewEngine(), "x", 0)
}

func TestLoadAndDemandSum(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	r.Start(1e6, 80, func(sim.Time) {})
	r.Start(1e6, 70, func(sim.Time) {})
	if got := r.DemandSum(); got != 150 {
		t.Fatalf("DemandSum=%v, want 150", got)
	}
	if got := r.Load(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Load=%v, want 1.5", got)
	}
}

func TestBusyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	r.Start(50, 1000, func(sim.Time) {})
	eng.Run()
	// 50 units of work moved: 50 unit-seconds = 50_000 unit-ms.
	got := r.BusyUnitMillis()
	if math.Abs(got-50_000) > 500 {
		t.Fatalf("BusyUnitMillis=%v, want ~50000", got)
	}
}

func TestSeekDegradeReducesAggregate(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "disk", 100)
	r.Degrade = NewSeekDegrade(0.5, 0.2)
	var d1 sim.Time
	r.Start(50, 1000, func(at sim.Time) { d1 = at })
	r.Start(50, 1000, func(sim.Time) {})
	eng.Run()
	// Two streams: aggregate = 100/(1+0.5) = 66.7 -> each 33.3/s.
	// 50 units -> 1500 ms.
	if d1 < 1480 || d1 > 1520 {
		t.Fatalf("degraded pair finished at %dms, want ~1500", d1)
	}
}

func TestSeekDegradeFloor(t *testing.T) {
	deg := NewSeekDegrade(1.0, 0.25)
	if got := deg(1); got != 1 {
		t.Fatalf("single stream degraded: %v", got)
	}
	if got := deg(100); got != 0.25 {
		t.Fatalf("floor not applied: %v", got)
	}
}

// Property: work is conserved — any mix of jobs completes, and the
// completion time of the whole batch is at least total-work/capacity.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		eng := sim.NewEngine()
		r := NewResource(eng, "res", 50)
		var total float64
		completed := 0
		n := 0
		for _, s := range sizes {
			w := float64(s%100) + 1
			total += w
			n++
			r.Start(w, float64(s%30)+1, func(sim.Time) { completed++ })
		}
		end := eng.Run()
		if completed != n {
			return false
		}
		minMs := total / 50 * 1000
		return float64(end) >= minMs-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: rates never exceed demand or capacity.
func TestPropertyRatesBounded(t *testing.T) {
	f := func(sizes []uint8) bool {
		eng := sim.NewEngine()
		cap := 75.0
		r := NewResource(eng, "res", cap)
		jobs := make([]*Job, 0, len(sizes))
		for _, s := range sizes {
			d := float64(s%40) + 1
			jobs = append(jobs, r.Start(float64(s)+1, d, func(sim.Time) {}))
		}
		ok := true
		check := func() {
			var sum float64
			for _, j := range jobs {
				if j.rate < 0 || j.rate > j.demand+1e-9 {
					ok = false
				}
				sum += j.rate
			}
			if sum > cap+1e-6 {
				ok = false
			}
		}
		eng.At(0, check)
		eng.At(1, check)
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
