package share_test

import (
	"fmt"

	"repro/internal/share"
	"repro/internal/sim"
)

// ExampleResource shows demand-proportional sharing: two equal streams on
// one disk each get half the bandwidth.
func ExampleResource() {
	eng := sim.NewEngine()
	disk := share.NewResource(eng, "disk", 100) // 100 MB/s
	disk.Start(100, 1000, func(at sim.Time) { fmt.Println("stream A done at", at, "ms") })
	disk.Start(100, 1000, func(at sim.Time) { fmt.Println("stream B done at", at, "ms") })
	eng.Run()
	// Output:
	// stream A done at 2000 ms
	// stream B done at 2000 ms
}

// ExampleNewSeekDegrade shows rotational-disk degradation: concurrent
// streams cost aggregate bandwidth.
func ExampleNewSeekDegrade() {
	eng := sim.NewEngine()
	disk := share.NewResource(eng, "hdd", 100)
	disk.Degrade = share.NewSeekDegrade(1.0, 0.2) // halve aggregate at 2 streams
	disk.Start(100, 1000, func(at sim.Time) { fmt.Println("done at", at, "ms") })
	disk.Start(100, 1000, func(at sim.Time) { fmt.Println("done at", at, "ms") })
	eng.Run()
	// Output:
	// done at 4000 ms
	// done at 4000 ms
}
