// Package share implements a processor-sharing resource model for the
// simulated cluster. A Resource has a fixed capacity in abstract units per
// second (vcores for CPU, MB/s for disks and NICs); Jobs placed on it each
// declare a demand cap (the most they could consume alone) and a total
// amount of work. Capacity is shared in proportion to demand, capped at
// each job's demand — matching how the underlying hardware arbitrates
// (per-thread CPU slices, per-stream disk/NIC bandwidth).
//
// Contention-induced slowdown — the mechanism behind the paper's IO and CPU
// interference results — emerges directly: when the sum of demands exceeds
// capacity, every job's rate drops and its completion event is pushed out.
package share

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// epsilon below which remaining work counts as finished; guards against
// float drift producing zero-length reschedule loops.
const epsilon = 1e-6

// NewSeekDegrade returns a Degrade function for rotational storage:
// aggregate bandwidth falls as 1/(1+perStream*(n-1)) with the given
// floor, modelling seek overhead from interleaved streams.
func NewSeekDegrade(perStream, floor float64) func(int) float64 {
	return func(active int) float64 {
		if active <= 1 {
			return 1
		}
		f := 1 / (1 + perStream*float64(active-1))
		if f < floor {
			return floor
		}
		return f
	}
}

// Resource is a capacity shared by concurrent jobs.
type Resource struct {
	eng      *sim.Engine
	name     string
	capacity float64 // units per second
	jobs     map[*Job]struct{}
	settled  sim.Time
	next     *sim.Event

	// Degrade, when set, scales effective capacity by the number of
	// active jobs. Rotational disks lose aggregate bandwidth as
	// concurrent streams force seeks; NewSeekDegrade models that.
	Degrade func(active int) float64

	// busyUnitMs accumulates utilized capacity integrated over time
	// (unit-milliseconds), for utilization accounting.
	busyUnitMs float64

	seq uint64 // monotonically increasing job admission counter
}

// Job is one consumer of a Resource. Create with (*Resource).Start.
type Job struct {
	res       *Resource
	demand    float64 // max units/s this job can use
	remaining float64 // units of work left
	rate      float64 // current allocation, units/s
	done      func(at sim.Time)
	started   sim.Time
	seq       uint64 // admission order, the deterministic tie-breaker
}

// NewResource creates a resource with the given capacity in units/second.
func NewResource(eng *sim.Engine, name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("share: resource %q needs positive capacity, got %v", name, capacity))
	}
	return &Resource{
		eng:      eng,
		name:     name,
		capacity: capacity,
		jobs:     make(map[*Job]struct{}),
		settled:  eng.Now(),
	}
}

// Name returns the resource name (used in diagnostics).
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in units/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Active returns the number of jobs currently sharing the resource.
func (r *Resource) Active() int { return len(r.jobs) }

// DemandSum returns the total declared demand of active jobs, in units/s.
// A value above Capacity means the resource is saturated.
func (r *Resource) DemandSum() float64 {
	var sum float64
	for j := range r.jobs {
		sum += j.demand
	}
	return sum
}

// Load returns DemandSum normalized by capacity (1.0 == saturated).
func (r *Resource) Load() float64 { return r.DemandSum() / r.capacity }

// BusyUnitMillis returns utilized capacity integrated over time so far,
// in unit-milliseconds, settled up to the current instant.
func (r *Resource) BusyUnitMillis() float64 {
	r.settle()
	return r.busyUnitMs
}

// Start places work units of demand-capped work on the resource. done is
// invoked (via the engine, at the completion instant) when the work
// drains. Zero work completes on the next event boundary. It returns the
// Job so callers may Cancel it.
func (r *Resource) Start(work, demand float64, done func(at sim.Time)) *Job {
	if work < 0 || demand <= 0 {
		panic(fmt.Sprintf("share: invalid job on %q: work=%v demand=%v", r.name, work, demand))
	}
	r.settle()
	j := &Job{res: r, demand: demand, remaining: work, done: done, started: r.eng.Now(), seq: r.seq}
	r.seq++
	r.jobs[j] = struct{}{}
	r.reschedule()
	return j
}

// Cancel removes a job before completion; its done callback never fires.
// Cancelling a finished or already-cancelled job is a no-op.
func (r *Resource) Cancel(j *Job) {
	if j == nil {
		return
	}
	if _, ok := r.jobs[j]; !ok {
		return
	}
	r.settle()
	delete(r.jobs, j)
	r.reschedule()
}

// Rate returns the job's current allocation in units/s (0 if finished).
func (j *Job) Rate() float64 { return j.rate }

// Resource returns the resource the job was started on.
func (j *Job) Resource() *Resource { return j.res }

// Remaining returns the job's remaining work, settled to now.
func (j *Job) Remaining() float64 {
	if j.res != nil {
		j.res.settle()
	}
	return j.remaining
}

// settle advances every job's remaining work from the last settle point to
// now at the rates fixed at that point.
func (r *Resource) settle() {
	now := r.eng.Now()
	dt := float64(now - r.settled)
	if dt <= 0 {
		r.settled = now
		return
	}
	sec := dt / 1000.0
	for j := range r.jobs {
		consumed := j.rate * sec
		if consumed > j.remaining {
			consumed = j.remaining
		}
		j.remaining -= consumed
		r.busyUnitMs += j.rate * dt
	}
	r.settled = now
}

// reschedule recomputes fair rates and schedules the next completion.
func (r *Resource) reschedule() {
	if r.next != nil {
		r.eng.Cancel(r.next)
		r.next = nil
	}
	if len(r.jobs) == 0 {
		return
	}
	r.assignRates()

	// Find soonest completion among jobs with positive rate.
	var (
		soonest     sim.Duration = -1
		anyFinished bool
	)
	for j := range r.jobs {
		if j.remaining <= epsilon {
			anyFinished = true
			continue
		}
		if j.rate <= 0 {
			continue
		}
		ms := int64(j.remaining / j.rate * 1000.0)
		if float64(ms)*j.rate/1000.0 < j.remaining-epsilon {
			ms++ // round up to the ms in which the job actually drains
		}
		if ms < 1 {
			ms = 1
		}
		if soonest < 0 || ms < soonest {
			soonest = ms
		}
	}
	if anyFinished {
		soonest = 0
	}
	if soonest < 0 {
		return
	}
	r.next = r.eng.After(soonest, r.onTimer)
}

func (r *Resource) onTimer() {
	r.next = nil
	r.settle()
	var finished []*Job
	for j := range r.jobs {
		if j.remaining <= epsilon {
			finished = append(finished, j)
		}
	}
	// Deterministic completion order for simultaneous finishes:
	// admission order, never map iteration order.
	sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
	for _, j := range finished {
		delete(r.jobs, j)
	}
	r.reschedule()
	now := r.eng.Now()
	for _, j := range finished {
		j.rate = 0
		if j.done != nil {
			j.done(now)
		}
	}
}

// assignRates shares capacity in proportion to demand, capped at each
// job's demand. This matches how the underlying hardware arbitrates: a
// CPU scheduler gives runnable threads (demand = thread count) equal
// slices, and disk/NIC bandwidth divides across streams. When total
// demand fits, everyone runs at full demand.
func (r *Resource) assignRates() {
	pending := make([]*Job, 0, len(r.jobs))
	var sum float64
	for j := range r.jobs {
		j.rate = 0
		if j.remaining > epsilon {
			pending = append(pending, j)
			sum += j.demand
		}
	}
	if len(pending) == 0 {
		return
	}
	cap := r.capacity
	if r.Degrade != nil {
		cap *= r.Degrade(len(pending))
	}
	scale := 1.0
	if sum > cap {
		scale = cap / sum
	}
	for _, j := range pending {
		j.rate = j.demand * scale
	}
}
