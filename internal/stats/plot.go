package stats

import (
	"fmt"
	"strings"
)

// PlotSeries is one named sample for ASCIICDF.
type PlotSeries struct {
	Name   string
	Sample *Sample
	// Glyph marks this series' curve in the plot; assigned automatically
	// when zero.
	Glyph rune
}

var defaultGlyphs = []rune{'*', 'o', '+', 'x', '#', '@', '%'}

// ASCIICDF renders the empirical CDFs of several series in one text
// chart, the way the paper's Fig 4a/5a/7a panels overlay their curves.
// width and height are the plot area in characters.
func ASCIICDF(title string, width, height int, series ...PlotSeries) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var maxV float64
	live := make([]PlotSeries, 0, len(series))
	for i, s := range series {
		if s.Sample == nil || s.Sample.Len() == 0 {
			continue
		}
		if s.Glyph == 0 {
			s.Glyph = defaultGlyphs[i%len(defaultGlyphs)]
		}
		live = append(live, s)
		if m := s.Sample.Max(); m > maxV {
			maxV = m
		}
	}
	if len(live) == 0 || maxV == 0 {
		return title + ": no data\n"
	}

	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range live {
		for _, p := range s.Sample.CDF(width * 2) {
			x := int(p.Value / maxV * float64(width-1))
			y := int((1 - p.Fraction) * float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = s.Glyph
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for y, row := range grid {
		label := "   "
		if y == 0 {
			label = "1.0"
		} else if y == height-1 {
			label = "0.0"
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "    0%s%.1fs\n", strings.Repeat(" ", width-6), maxV/1000)
	b.WriteString("    ")
	for _, s := range live {
		fmt.Fprintf(&b, "%c=%s  ", s.Glyph, s.Name)
	}
	b.WriteString("\n")
	return b.String()
}
