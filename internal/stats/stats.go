// Package stats provides the summary statistics SDchecker reports and the
// paper plots: CDFs, percentiles, means, standard deviations, and
// normalized-ratio summaries. Everything operates on float64 samples; the
// callers convert delays (virtual milliseconds) before aggregating.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a mutable collection of observations.
type Sample struct {
	vals   []float64
	sorted bool
}

// NewSample returns an empty sample, optionally pre-sized.
func NewSample(capacity int) *Sample {
	return &Sample{vals: make([]float64, 0, capacity)}
}

// FromValues builds a sample from existing observations (copied).
func FromValues(vs []float64) *Sample {
	s := NewSample(len(vs))
	s.vals = append(s.vals, vs...)
	s.sorted = false
	return s
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.vals) }

// Values returns the raw observations (not a copy; do not mutate).
func (s *Sample) Values() []float64 { return s.vals }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Min returns the smallest observation, or 0 on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// Mean returns the arithmetic mean, or 0 on an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty samples yield 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// P95 returns the 95th percentile, the paper's headline tail metric.
func (s *Sample) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of observations <= Value
}

// CDF returns up to points evenly spaced quantiles of the empirical CDF,
// suitable for plotting. points < 2 is treated as 2.
func (s *Sample) CDF(points int) []CDFPoint {
	if points < 2 {
		points = 2
	}
	n := len(s.vals)
	if n == 0 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		idx := int(f * float64(n-1))
		out = append(out, CDFPoint{Value: s.vals[idx], Fraction: float64(idx+1) / float64(n)})
	}
	return out
}

// Summary is the fixed set of aggregates reported for each delay component.
type Summary struct {
	Name   string
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary with the given name.
func (s *Sample) Summarize(name string) Summary {
	return Summary{
		Name:   name,
		Count:  s.Len(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		P50:    s.Median(),
		P95:    s.P95(),
		P99:    s.P99(),
		Max:    s.Max(),
	}
}

// String renders the summary in seconds with millisecond inputs assumed by
// convention at the call sites that format reports.
func (sm Summary) String() string {
	return fmt.Sprintf("%-16s n=%-5d mean=%8.1f sd=%8.1f p50=%8.1f p95=%8.1f p99=%8.1f max=%8.1f",
		sm.Name, sm.Count, sm.Mean, sm.StdDev, sm.P50, sm.P95, sm.P99, sm.Max)
}

// Ratio divides a by b elementwise (pairing by index) and returns the
// resulting sample. Pairs where b == 0 are skipped. It is used for the
// paper's normalized plots (total/job, in/total, ...). The shorter length
// bounds the output.
func Ratio(a, b *Sample) *Sample {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	out := NewSample(n)
	for i := 0; i < n; i++ {
		if b.vals[i] == 0 {
			continue
		}
		out.Add(a.vals[i] / b.vals[i])
	}
	return out
}

// Histogram bins observations into fixed-width buckets.
type Histogram struct {
	BinWidth float64
	Counts   map[int]int
	N        int
}

// Histogram bins the sample with the given bin width (> 0).
func (s *Sample) Histogram(binWidth float64) *Histogram {
	if binWidth <= 0 {
		binWidth = 1
	}
	h := &Histogram{BinWidth: binWidth, Counts: make(map[int]int)}
	for _, v := range s.vals {
		h.Counts[int(math.Floor(v/binWidth))]++
		h.N++
	}
	return h
}

// Bins returns the bin indices in ascending order.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Format renders the histogram as text bars.
func (h *Histogram) Format() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for _, bin := range h.Bins() {
		c := h.Counts[bin]
		bar := strings.Repeat("#", c*40/maxInt(maxC, 1))
		fmt.Fprintf(&b, "%10.0f-%-10.0f %6d %s\n",
			float64(bin)*h.BinWidth, float64(bin+1)*h.BinWidth, c, bar)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatTable renders rows of summaries as an aligned text table.
func FormatTable(title string, sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-16s %6s %10s %10s %10s %10s %10s %10s\n",
		"component", "n", "mean", "stddev", "p50", "p95", "p99", "max")
	for _, sm := range sums {
		fmt.Fprintf(&b, "%-16s %6d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			sm.Name, sm.Count, sm.Mean, sm.StdDev, sm.P50, sm.P95, sm.P99, sm.Max)
	}
	return b.String()
}
