package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySampleIsSafe(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Median() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should yield zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestBasicMoments(t *testing.T) {
	s := FromValues([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(s.Mean(), 5) {
		t.Fatalf("mean=%v, want 5", s.Mean())
	}
	if !almost(s.StdDev(), 2) {
		t.Fatalf("stddev=%v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max=%v/%v", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 40) {
		t.Fatalf("sum=%v, want 40", s.Sum())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := FromValues([]float64{10, 20, 30, 40})
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0=%v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100=%v", got)
	}
	if got := s.Median(); !almost(got, 25) {
		t.Fatalf("median=%v, want 25", got)
	}
	// p25 of 4 values: rank 0.75 -> 10*(0.25) + 20*(0.75) = 17.5
	if got := s.Percentile(25); !almost(got, 17.5) {
		t.Fatalf("p25=%v, want 17.5", got)
	}
}

func TestAddKeepsPercentilesCurrent(t *testing.T) {
	s := NewSample(4)
	s.Add(5)
	if s.Median() != 5 {
		t.Fatal("single-value median")
	}
	s.Add(1) // forces re-sort
	if !almost(s.Median(), 3) {
		t.Fatalf("median after add=%v, want 3", s.Median())
	}
}

func TestCDFMonotone(t *testing.T) {
	s := FromValues([]float64{5, 3, 8, 1, 9, 2, 7})
	pts := s.CDF(10)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.Fraction != 1 || last.Value != 9 {
		t.Fatalf("CDF does not end at (max, 1): %+v", last)
	}
}

func TestRatioSkipsZeroDenominator(t *testing.T) {
	a := FromValues([]float64{10, 20, 30})
	b := FromValues([]float64{2, 0, 10})
	r := Ratio(a, b)
	if r.Len() != 2 {
		t.Fatalf("ratio kept %d values, want 2", r.Len())
	}
	vals := r.Values()
	if !almost(vals[0], 5) || !almost(vals[1], 3) {
		t.Fatalf("ratio=%v", vals)
	}
}

func TestRatioLengthMismatch(t *testing.T) {
	a := FromValues([]float64{10, 20})
	b := FromValues([]float64{2})
	if got := Ratio(a, b).Len(); got != 1 {
		t.Fatalf("ratio of mismatched lengths kept %d, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := FromValues([]float64{1, 2, 3})
	sm := s.Summarize("x")
	if sm.Name != "x" || sm.Count != 3 || !almost(sm.Mean, 2) || sm.Min != 1 || sm.Max != 3 {
		t.Fatalf("bad summary: %+v", sm)
	}
	if !strings.Contains(sm.String(), "x") {
		t.Fatal("summary string misses name")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("title", []Summary{FromValues([]float64{1}).Summarize("row")})
	if !strings.Contains(out, "title") || !strings.Contains(out, "row") {
		t.Fatalf("table output missing fields:\n%s", out)
	}
}

// Property: percentiles are bounded by min/max and monotone in p.
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := FromValues(vals)
		lo := float64(p1 % 101)
		hi := float64(p2 % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := s.Percentile(lo), s.Percentile(hi)
		sort.Float64s(vals)
		return a >= vals[0]-1e-9 && b <= vals[len(vals)-1]+1e-9 && a <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestPropertyMomentSanity(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	s := FromValues([]float64{1, 2, 3, 11, 12, 25})
	h := s.Histogram(10)
	if h.N != 6 {
		t.Fatalf("N=%d", h.N)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 2 {
		t.Fatalf("bins=%v", bins)
	}
	out := h.Format()
	if !strings.Contains(out, "#") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestHistogramZeroWidth(t *testing.T) {
	h := FromValues([]float64{0.5, 1.5}).Histogram(0)
	if h.BinWidth != 1 {
		t.Fatalf("zero width not defaulted: %v", h.BinWidth)
	}
}
