package stats

import (
	"strings"
	"testing"
)

func TestASCIICDFRendersSeries(t *testing.T) {
	a := FromValues([]float64{1000, 2000, 3000, 4000})
	b := FromValues([]float64{5000, 6000, 7000, 8000})
	out := ASCIICDF("test plot", 40, 10, PlotSeries{Name: "fast", Sample: a}, PlotSeries{Name: "slow", Sample: b})
	if !strings.Contains(out, "test plot") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=fast") || !strings.Contains(out, "o=slow") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.0") {
		t.Fatal("y labels missing")
	}
	if !strings.Contains(out, "8.0s") {
		t.Fatalf("x max missing:\n%s", out)
	}
	// The fast series must appear left of the slow one on the top row of
	// occupied cells: find column of first '*' and first 'o' anywhere.
	star := strings.IndexRune(out, '*')
	oh := strings.IndexRune(strings.ReplaceAll(out, "o=slow", ""), 'o')
	if star < 0 || oh < 0 {
		t.Fatalf("curves not drawn:\n%s", out)
	}
}

func TestASCIICDFEmpty(t *testing.T) {
	out := ASCIICDF("empty", 40, 10, PlotSeries{Name: "x", Sample: NewSample(0)})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty handling:\n%s", out)
	}
}

func TestASCIICDFMinimumDims(t *testing.T) {
	s := FromValues([]float64{1, 2})
	out := ASCIICDF("tiny", 1, 1, PlotSeries{Name: "s", Sample: s})
	if len(strings.Split(out, "\n")) < 8 {
		t.Fatalf("dims not clamped:\n%s", out)
	}
}
