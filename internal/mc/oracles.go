package mc

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/log4j"
	"repro/internal/yarn"
)

// The oracles run after every applied choice (World.check) and once more
// at quiescence (World.CheckFinal). They look only at observable state:
// the canonical snapshot and the daemon logs — the same logs SDchecker
// mines — never at simulator internals.

// Transition-line shapes, in the real daemons' vocabulary.
var (
	rmAppTransRe  = regexp.MustCompile(`^(\S+) State change from (\S+) to (\S+) on event = (\S+)$`)
	rmContTransRe = regexp.MustCompile(`^(\S+) Container Transitioned from (\S+) to (\S+)$`)
	nmContTransRe = regexp.MustCompile(`^Container (\S+) transitioned from (\S+) to (\S+)$`)
)

// Legal RMContainerImpl transition lines. The logged from-state is the
// reporter's view: the RM hardcodes "RUNNING" when a lost or completed
// container is reported, even if it only ever reached ALLOCATED/ACQUIRED
// (the NM report, not the RM, is what promotes a container to running).
var rmContEdges = map[string][]string{
	"NEW":       {"ALLOCATED"},
	"ALLOCATED": {"ACQUIRED", "RELEASED", "KILLED"},
	"ACQUIRED":  {"RELEASED", "COMPLETED"},
	"RUNNING":   {"KILLED", "COMPLETED"},
}

var rmContTerminal = map[string]bool{"RELEASED": true, "KILLED": true, "COMPLETED": true}

// Legal RMAppImpl transitions. ACCEPTED -> RUNNING may repeat: a
// relaunched AppMaster re-registers its attempt (the Spark driver does),
// and the RM logs the registration transition again.
var rmAppEdges = map[string]string{
	"NEW":          "NEW_SAVING",
	"NEW_SAVING":   "SUBMITTED",
	"SUBMITTED":    "ACCEPTED",
	"ACCEPTED":     "RUNNING",
	"RUNNING":      "FINAL_SAVING",
	"FINAL_SAVING": "FINISHED",
}

// Legal NM-side ContainerImpl transitions. NM chains have no promotions:
// the logged from-state must match the tracked state exactly. A chain may
// stop anywhere (a crash truncates it); it must never continue past a
// terminal state.
var nmContEdges = map[string][]string{
	"NEW":        {"LOCALIZING"},
	"LOCALIZING": {"SCHEDULED"},
	"SCHEDULED":  {"RUNNING", "EXITED_WITH_FAILURE"},
	"RUNNING":    {"EXITED_WITH_SUCCESS", "KILLING"},
}

var nmContTerminal = map[string]bool{
	"EXITED_WITH_SUCCESS": true,
	"EXITED_WITH_FAILURE": true,
	"KILLING":             true,
}

// check runs every step oracle, recording the first violation.
func (w *World) check() {
	if w.violation != nil {
		return
	}
	if v := w.scanLogs(); v != nil {
		w.fail(v)
		return
	}
	if v := w.checkSnapshot(); v != nil {
		w.fail(v)
	}
}

func (w *World) fail(v *Violation) {
	v.Step = len(w.trace)
	w.violation = v
}

// scanLogs consumes every daemon log line appended since the last check,
// verifying vocabulary conformance and feeding the lifecycle watchers.
// Container stderr files belong to the toy processes and are skipped.
func (w *World) scanLogs() *Violation {
	for _, file := range w.bed.Sink.Files() {
		lines := w.bed.Sink.Lines(file)
		start := w.cursors[file]
		w.cursors[file] = len(lines)
		if !strings.HasPrefix(file, "hadoop/") {
			continue
		}
		for _, raw := range lines[start:] {
			ln, err := log4j.ParseLine(raw)
			if err != nil {
				return &Violation{Invariant: "log-vocabulary",
					Detail: fmt.Sprintf("%s: unparseable line %q: %v", file, raw, err)}
			}
			if v := w.matchVocab(file, ln); v != nil {
				return v
			}
			if v := w.watchLine(file, ln); v != nil {
				return v
			}
		}
	}
	return nil
}

// watchLine routes one parsed daemon line to its lifecycle watcher.
func (w *World) watchLine(file string, ln log4j.Line) *Violation {
	switch ln.Class {
	case yarn.ClassRMAppImpl:
		if m := rmAppTransRe.FindStringSubmatch(ln.Message); m != nil {
			return w.watchRMApp(m[1], m[2], m[3])
		}
	case yarn.ClassRMContainerImpl:
		if m := rmContTransRe.FindStringSubmatch(ln.Message); m != nil {
			return w.watchRMCont(m[1], m[2], m[3])
		}
	case yarn.ClassContainerImpl:
		if m := nmContTransRe.FindStringSubmatch(ln.Message); m != nil {
			return w.watchNMCont(file+"|"+m[1], m[1], m[2], m[3])
		}
	}
	return nil
}

func (w *World) watchRMCont(cid, from, to string) *Violation {
	t := w.rmConts[cid]
	if t == nil {
		if from != "NEW" || to != "ALLOCATED" {
			return &Violation{Invariant: "container-lifecycle",
				Detail: fmt.Sprintf("%s: first RM transition is %s->%s, want NEW->ALLOCATED", cid, from, to)}
		}
		w.rmConts[cid] = &contTrack{state: "ALLOCATED"}
		return nil
	}
	if rmContTerminal[t.state] {
		return &Violation{Invariant: "container-accounting",
			Detail: fmt.Sprintf("%s: RM transition %s->%s after terminal %s (duplicated disposition)", cid, from, to, t.state)}
	}
	promoted := from == "RUNNING" && (t.state == "ALLOCATED" || t.state == "ACQUIRED")
	if from != t.state && !promoted {
		return &Violation{Invariant: "container-lifecycle",
			Detail: fmt.Sprintf("%s: RM transition %s->%s but tracked state is %s", cid, from, to, t.state)}
	}
	if !containsStr(rmContEdges[from], to) {
		return &Violation{Invariant: "container-lifecycle",
			Detail: fmt.Sprintf("%s: illegal RM transition %s->%s", cid, from, to)}
	}
	t.state = to
	return nil
}

func (w *World) watchRMApp(aid, from, to string) *Violation {
	t := w.rmApps[aid]
	if t == nil {
		t = &contTrack{state: "NEW"}
		w.rmApps[aid] = t
	}
	if t.state == "FINISHED" {
		return &Violation{Invariant: "app-lifecycle",
			Detail: fmt.Sprintf("%s: transition %s->%s after FINISHED (completion must be exactly-once)", aid, from, to)}
	}
	reRegister := from == "ACCEPTED" && to == "RUNNING" && t.state == "RUNNING"
	if from != t.state && !reRegister {
		return &Violation{Invariant: "app-lifecycle",
			Detail: fmt.Sprintf("%s: transition %s->%s but tracked state is %s", aid, from, to, t.state)}
	}
	if rmAppEdges[from] != to {
		return &Violation{Invariant: "app-lifecycle",
			Detail: fmt.Sprintf("%s: illegal transition %s->%s", aid, from, to)}
	}
	t.state = to
	return nil
}

func (w *World) watchNMCont(key, cid, from, to string) *Violation {
	t := w.nmConts[key]
	if t == nil {
		if from != "NEW" || to != "LOCALIZING" {
			return &Violation{Invariant: "container-lifecycle",
				Detail: fmt.Sprintf("%s: first NM transition is %s->%s, want NEW->LOCALIZING", cid, from, to)}
		}
		w.nmConts[key] = &contTrack{state: "LOCALIZING"}
		return nil
	}
	if nmContTerminal[t.state] {
		return &Violation{Invariant: "container-accounting",
			Detail: fmt.Sprintf("%s: NM transition %s->%s after terminal %s", cid, from, to, t.state)}
	}
	if from != t.state {
		return &Violation{Invariant: "container-lifecycle",
			Detail: fmt.Sprintf("%s: NM transition %s->%s but tracked state is %s", cid, from, to, t.state)}
	}
	if !containsStr(nmContEdges[from], to) {
		return &Violation{Invariant: "container-lifecycle",
			Detail: fmt.Sprintf("%s: illegal NM transition %s->%s", cid, from, to)}
	}
	t.state = to
	return nil
}

// checkSnapshot verifies the conservation invariants over the canonical
// snapshot: queue charges and node reservations must each equal the sum
// over the containers that hold them.
func (w *World) checkSnapshot() *Violation {
	s := w.bed.RM.Snapshot()

	chargedByQueue := make(map[string]int)
	for _, a := range s.Apps {
		for _, c := range a.Conts {
			if c.Charged {
				chargedByQueue[c.Queue] += c.MemMB
			}
		}
	}
	for _, q := range s.Queues {
		if q.UsedMemMB != chargedByQueue[q.Name] {
			return &Violation{Invariant: "queue-charge-conservation",
				Detail: fmt.Sprintf("queue %s usedMemMB=%d but charged containers sum to %d",
					q.Name, q.UsedMemMB, chargedByQueue[q.Name])}
		}
		if q.UsedMemMB < 0 || q.UsedMemMB > q.LimitMemMB {
			return &Violation{Invariant: "queue-charge-bounds",
				Detail: fmt.Sprintf("queue %s usedMemMB=%d outside [0,%d]", q.Name, q.UsedMemMB, q.LimitMemMB)}
		}
	}

	type reserved struct{ mem, vcores int }
	expect := make(map[string]reserved)
	epochByNode := make(map[string]int, len(s.Nodes))
	for _, n := range s.Nodes {
		epochByNode[n.Name] = n.Epoch
	}
	for _, a := range s.Apps {
		for _, c := range a.Conts {
			if c.Type == "G" && c.Reserved && c.NMEpoch == epochByNode[c.Node] {
				r := expect[c.Node]
				r.mem += c.MemMB
				r.vcores += c.VCores
				expect[c.Node] = r
			}
		}
	}
	for _, n := range s.Nodes {
		if n.Down {
			// A dead incarnation's counters are off the books until restart.
			continue
		}
		if n.OppMemMB < 0 || n.OppVCores < 0 {
			return &Violation{Invariant: "nm-reserve-conservation",
				Detail: fmt.Sprintf("node %s negative opportunistic usage mem=%d vcores=%d", n.Name, n.OppMemMB, n.OppVCores)}
		}
		r := expect[n.Name]
		if n.ReservedMemMB != r.mem || n.ReservedVCores != r.vcores {
			return &Violation{Invariant: "nm-reserve-conservation",
				Detail: fmt.Sprintf("node %s (epoch %d) reserved mem=%d vcores=%d but live reservations sum to mem=%d vcores=%d",
					n.Name, n.Epoch, n.ReservedMemMB, n.ReservedVCores, r.mem, r.vcores)}
		}
		if n.ReservedMemMB > n.TotalMemMB {
			return &Violation{Invariant: "nm-reserve-conservation",
				Detail: fmt.Sprintf("node %s overcommitted: reserved %d MB of %d", n.Name, n.ReservedMemMB, n.TotalMemMB)}
		}
	}
	return nil
}

// CheckFinal runs the quiescence-time oracles: exactly-once completion
// hooks and a terminal disposition for every container the RM ever
// allocated (no lost containers).
func (w *World) CheckFinal() *Violation {
	if w.violation != nil {
		return w.violation
	}
	for i, am := range w.ams {
		if am.finishCalls != 1 {
			v := &Violation{Invariant: "finish-hook-exactly-once",
				Detail: fmt.Sprintf("app %d fired its completion hook %d times, want 1", i, am.finishCalls)}
			w.fail(v)
			return v
		}
	}
	cids := make([]string, 0, len(w.rmConts))
	for cid := range w.rmConts {
		cids = append(cids, cid)
	}
	sort.Strings(cids)
	for _, cid := range cids {
		if !rmContTerminal[w.rmConts[cid].state] {
			v := &Violation{Invariant: "container-accounting",
				Detail: fmt.Sprintf("%s has no terminal disposition at quiescence (stuck in %s)", cid, w.rmConts[cid].state)}
			w.fail(v)
			return v
		}
	}
	return nil
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
