package mc

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"too many nodes", func(c *Config) { c.Nodes = 5 }, "Nodes"},
		{"too many apps", func(c *Config) { c.Apps = 4 }, "Apps"},
		{"fault budget", func(c *Config) { c.Faults = 2 }, "Faults"},
		{"fault needs spare node", func(c *Config) { c.Nodes = 1; c.Faults = 1 }, "Faults"},
		{"bad scheduler", func(c *Config) { c.Scheduler = "fifo" }, "Scheduler"},
		{"stride over window", func(c *Config) { c.Stride = 1000 }, "Stride"},
		{"workload too big", func(c *Config) { c.NodeMemMB = 1024; c.Apps = 3 }, "fit"},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v, want substring %q", c.name, err, c.want)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := SmokeConfig().Validate(); err != nil {
		t.Errorf("smoke config invalid: %v", err)
	}
}

func TestSmokeExploreIsClean(t *testing.T) {
	res, err := Explore(SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("smoke exploration found violations: %v", res.Violations[0].Violation)
	}
	if res.Branches == 0 || res.StatesVisited == 0 {
		t.Fatalf("exploration did no work: %d states, %d branches", res.StatesVisited, res.Branches)
	}
}

func TestFaultExploreIsClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Apps = 1
	cfg.Window = 60
	cfg.Stride = 6
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("fault exploration found violations: %v", res.Violations[0].Violation)
	}
}

// TestRegressionTracesStayClean replays the checked-in counterexamples
// that the explorer minimized against earlier, buggy control-plane code
// (stale-epoch reservations, expiry-race double terminals, orphaned
// opportunistic grants). Each must now replay to quiescence without any
// violation; a reappearance means the corresponding fix regressed.
func TestRegressionTracesStayClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "cx", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no regression traces found: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		cx, err := ReadCounterexample(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if _, v := Replay(cx.Config, cx.Trace); v != nil {
			t.Errorf("%s: recorded violation %q resurfaced as: %v",
				filepath.Base(file), cx.Violation.Invariant, v)
		}
	}
}

// TestBreakEpochGuardProducesCounterexample is the chaos self-test from
// the acceptance criteria: disabling the NM epoch guard must make the
// explorer find a violation, minimize it, and produce a counterexample
// that replays. It also proves the oracles are alive — an exploration
// that can never fail verifies nothing.
func TestBreakEpochGuardProducesCounterexample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Apps = 1
	cfg.Window = 60
	cfg.Stride = 6
	cfg.BreakEpochGuard = true
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cx *Counterexample
	for _, c := range res.Violations {
		if c.Violation.Invariant == "nm-reserve-conservation" {
			cx = c
		}
	}
	if cx == nil {
		t.Fatalf("breaking the epoch guard surfaced no nm-reserve-conservation violation (got %v)", res.Counts)
	}

	min := Minimize(cx)
	if len(min.Trace) > len(cx.Trace) {
		t.Fatalf("minimization grew the trace: %d -> %d", len(cx.Trace), len(min.Trace))
	}
	if min.Violation.Invariant != "nm-reserve-conservation" {
		t.Fatalf("minimized trace violates %q, want nm-reserve-conservation", min.Violation.Invariant)
	}

	// Serialize, reload, and replay: the round-tripped counterexample must
	// still reproduce the recorded invariant.
	path := filepath.Join(t.TempDir(), "cx.json")
	if err := WriteCounterexample(path, min); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCounterexample(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Trace, min.Trace) {
		t.Fatal("trace did not survive the JSON round trip")
	}
	if _, v := Replay(loaded.Config, loaded.Trace); v == nil || v.Invariant != min.Violation.Invariant {
		t.Fatalf("round-tripped counterexample does not reproduce: %v", v)
	}
}

// TestReplayIsDeterministic replays one fixture twice and requires
// identical final fingerprints — the Restore half of the
// Step/Snapshot/Restore seam depends on it.
func TestReplayIsDeterministic(t *testing.T) {
	cx, err := ReadCounterexample(filepath.Join("testdata", "cx", "stale-epoch-reservation.json"))
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := Replay(cx.Config, cx.Trace)
	w2, _ := Replay(cx.Config, cx.Trace)
	if w1.Fingerprint() != w2.Fingerprint() {
		t.Fatal("identical traces produced different final states")
	}
}

func TestReadCounterexampleRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCounterexample(path); err == nil {
		t.Fatal("version 2 accepted")
	}
}
