package mc

import "strings"

// Minimize greedily shrinks a counterexample trace while preserving the
// violated invariant (ddmin-style: remove chunks of halving size, then
// single choices). Because Replay closes every candidate run to
// quiescence, trailing ticks collapse automatically and the minimized
// trace keeps only the external placements and the inter-event spacing
// the violation actually needs.
func Minimize(cx *Counterexample) *Counterexample {
	cfg := cx.Config.withDefaults()
	target := cx.Violation.Invariant
	cache := make(map[string]bool)
	reproduces := func(trace []string) bool {
		key := strings.Join(trace, "|")
		if hit, ok := cache[key]; ok {
			return hit
		}
		_, v := Replay(cfg, trace)
		ok := v != nil && v.Invariant == target
		cache[key] = ok
		return ok
	}

	cur := append([]string(nil), cx.Trace...)
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		if chunk == 1 && len(cur) > 160 {
			// A trace still this long is dominated by ticks the closing
			// run will re-execute anyway; per-choice passes are not worth
			// their quadratic replay cost.
			break
		}
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]string(nil), cur[:start]...), cur[start+chunk:]...)
			if reproduces(cand) {
				cur = cand
			} else {
				start += chunk
			}
		}
	}

	_, v := Replay(cfg, cur)
	if v == nil {
		// Cannot happen (cur reproduced during shrinking); keep the
		// original rather than return a broken witness.
		return cx
	}
	return &Counterexample{
		Version:       1,
		Config:        cx.Config,
		Trace:         cur,
		Violation:     *v,
		MinimizedFrom: len(cx.Trace),
	}
}
