package mc

import (
	"fmt"
	"regexp"
	"sync"

	"repro/internal/analysis"
	"repro/internal/log4j"
	"repro/internal/yarn"
)

// The log-vocabulary oracle declares, per daemon logging class, every fmt
// template the yarn package may emit, and requires each observed RM/NM
// log line to match one of them. Templates are compiled into anchored
// regular expressions with analysis.TemplateToRegexp — the same machinery
// SDchecker's miner-automaton cross-checks use — so the oracle's notion
// of "a rendering of this template" is identical to the analysis layer's.
//
// vocab_test.go keeps this list honest: it parses the yarn package
// sources and asserts the set of Infof format literals equals the set
// declared here. Extending yarn's log surface without extending (and
// re-reviewing) the vocabulary is a test failure, not a silent drift.
var emitterTemplates = map[string][]string{
	yarn.ClassRMAppImpl: {
		"%s State change from %s to %s on event = %s",
		"Application %s submitted: name=%s type=%s queue=%s",
	},
	yarn.ClassRMContainerImpl: {
		"%s Container Transitioned from %s to %s",
		"%s completed with exit status -100. Diagnostics: Container released on a *lost* node",
		"%s completed with exit status 1: launch failure",
	},
	// The scheduler logger's class is picked once per config (capacity vs
	// opportunistic), but both allocation paths log through it, so both
	// classes share the full scheduler template set.
	yarn.ClassCapacitySched: {
		"Assigned container %s of capacity <memory:%d, vCores:%d> on host %s",
		"Allocated opportunistic container %s on host %s",
	},
	yarn.ClassOpportunistic: {
		"Assigned container %s of capacity <memory:%d, vCores:%d> on host %s",
		"Allocated opportunistic container %s on host %s",
	},
	yarn.ClassRMNodeImpl: {
		"Deactivating Node %s as it is now LOST",
		"%s Node Transitioned from RUNNING to LOST",
		"%s:8041 Node Transitioned from NEW to RUNNING",
	},
	yarn.ClassLivelinessMon: {
		"Expired:%s Timed out after %d secs",
	},
	yarn.ClassContainerImpl: {
		"Container %s transitioned from NEW to LOCALIZING",
		"Container %s transitioned from LOCALIZING to SCHEDULED",
		"Container %s transitioned from SCHEDULED to RUNNING",
		"Container %s transitioned from RUNNING to EXITED_WITH_SUCCESS",
		"Container %s transitioned from SCHEDULED to EXITED_WITH_FAILURE",
		"Container %s transitioned from RUNNING to KILLING",
	},
	yarn.ClassContainerLaunch: {
		"Invoking launch script for container %s",
		"Opportunistic container %s queued at %s",
		"Preempting opportunistic container %s for a guaranteed container",
		"Container %s exit code 1: launch script failed",
	},
	yarn.ClassNodeStatusUpd: {
		"Registering with RM using containers from previous attempt",
	},
}

// vocabTemplate is one compiled emitter template.
type vocabTemplate struct {
	template string
	re       *regexp.Regexp
}

var (
	vocabOnce     sync.Once
	vocabCompiled map[string][]*vocabTemplate
)

// emitterVocab compiles the declared templates once and returns the
// shared class -> templates table.
func emitterVocab() map[string][]*vocabTemplate {
	vocabOnce.Do(func() {
		vocabCompiled = make(map[string][]*vocabTemplate, len(emitterTemplates))
		for class, templates := range emitterTemplates {
			for _, tpl := range templates {
				re := regexp.MustCompile(analysis.TemplateToRegexp(tpl))
				vocabCompiled[class] = append(vocabCompiled[class], &vocabTemplate{template: tpl, re: re})
			}
		}
	})
	return vocabCompiled
}

// matchVocab checks one parsed daemon line against the declared
// vocabulary for its logging class.
func (w *World) matchVocab(file string, ln log4j.Line) *Violation {
	templates, ok := w.vocab[ln.Class]
	if !ok {
		return &Violation{Invariant: "log-vocabulary",
			Detail: fmt.Sprintf("%s: line from undeclared class %s: %q", file, ln.Class, ln.Message)}
	}
	for _, t := range templates {
		if t.re.MatchString(ln.Message) {
			return nil
		}
	}
	return &Violation{Invariant: "log-vocabulary",
		Detail: fmt.Sprintf("%s: message matches no declared %s template: %q", file, ln.Class, ln.Message)}
}
