// Package mc is a small-scope model checker for the simulated YARN
// control plane (internal/yarn). It drives the RMApp / RMContainer / NM
// container state machines through the event interleavings a tiny
// configuration (<= 4 nodes, <= 3 apps, <= 1 injected fault) can
// produce, checking invariant oracles at every event boundary:
//
//   - queue-charge conservation: each leaf queue's usedMemMB equals the
//     sum over containers still holding a charge;
//   - node-reservation conservation: each live NM incarnation's
//     reserved counters equal the sum over reservations made against
//     that incarnation — no lost or doubly-returned reservations across
//     crash/restart epochs;
//   - container/app lifecycle: the RM- and NM-side transition logs form
//     legal state-machine walks with at most one terminal disposition
//     per container and exactly one FINISHED per app;
//   - log-vocabulary conformance: every RM/NM daemon line matches one of
//     the declared emitter templates (compiled with
//     analysis.TemplateToRegexp, the same NFA machinery SDchecker uses).
//
// The explorer (Explore) is a bounded DFS over a choice trace: "tick"
// fires exactly one engine event (sim.Engine.Step), and external choices
// ("submit:i", "crash:j", "restart:j") are injected at stride-spaced
// insertion points within a window of the first Window events. After the
// externals are placed, each branch is closed by running deterministically
// to quiescence. Because the simulation is a pure function of (seed,
// choice trace), Restore is replay: any state is rebuilt exactly by
// re-applying its trace to a fresh world, which is also what makes
// counterexamples serializable and replayable (cmd/sdmc).
//
// Scope bounds (documented approximations): interleavings are explored at
// event granularity only inside the window, externals land only on stride
// boundaries, and the visited-state fingerprint (domain snapshot + rng
// states + relative pending-event times) is a pruning heuristic — two
// merged states could in principle differ in un-fingerprinted closure
// state. The bounds trade exhaustiveness for a state space a unit test
// can exhaust.
package mc

import (
	"fmt"

	"repro/internal/yarn"
)

// Config bounds one exploration. The zero value is not valid; start from
// DefaultConfig or SmokeConfig.
type Config struct {
	// Nodes, Apps and Faults set the small scope: cluster size, number of
	// toy applications, and the crash budget (0 or 1). Faults > 0
	// requires Nodes >= 2, so that expiry/retry can always re-place work
	// and quiescence stays reachable on the no-restart branches.
	Nodes  int `json:"nodes"`
	Apps   int `json:"apps"`
	Faults int `json:"faults"`
	// WorkersPerApp is how many worker containers each toy AM runs.
	WorkersPerApp int `json:"workers_per_app"`
	// Scheduler is "capacity" (default) or "opportunistic".
	Scheduler string `json:"scheduler,omitempty"`
	Seed      uint64 `json:"seed"`
	// Window is the exploration horizon in engine events: external
	// choices may only be injected among the first Window events. Stride
	// spaces the insertion points (externals land when the number of
	// fired events is a multiple of Stride).
	Window int `json:"window"`
	Stride int `json:"stride"`
	// MaxCloseEvents caps the deterministic closing run of each branch;
	// exceeding it without reaching quiescence is itself a violation
	// (leaked charges and stuck containers surface this way).
	MaxCloseEvents int `json:"max_close_events"`
	// Node shape and toy workload timing.
	NodeVCores   int   `json:"node_vcores"`
	NodeMemMB    int   `json:"node_mem_mb"`
	WorkerLifeMs int64 `json:"worker_life_ms"`
	// BreakEpochGuard disables the NM's epoch guard (yarn.SetChaos) so
	// the checker can demonstrate the class of bug the guard exists to
	// prevent: orphaned pre-restart callback chains resurrecting
	// containers on the new incarnation. Self-test only.
	BreakEpochGuard bool `json:"break_epoch_guard,omitempty"`
}

// DefaultConfig is the standard full exploration: 2 nodes, 2 apps, one
// crash/restart fault.
func DefaultConfig() Config {
	return Config{
		Nodes:          2,
		Apps:           2,
		Faults:         1,
		WorkersPerApp:  1,
		Scheduler:      "capacity",
		Seed:           1,
		Window:         96,
		Stride:         12,
		MaxCloseEvents: 8000,
		NodeVCores:     4,
		NodeMemMB:      4096,
		WorkerLifeMs:   120,
	}
}

// SmokeConfig is the CI-sized exploration: 2 nodes, 2 apps, no fault,
// small window. It must stay fast enough to run on every push.
func SmokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Faults = 0
	cfg.Window = 48
	return cfg
}

// withDefaults fills unset tuning fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WorkersPerApp == 0 {
		c.WorkersPerApp = d.WorkersPerApp
	}
	if c.Scheduler == "" {
		c.Scheduler = d.Scheduler
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Stride == 0 {
		c.Stride = d.Stride
	}
	if c.MaxCloseEvents == 0 {
		c.MaxCloseEvents = d.MaxCloseEvents
	}
	if c.NodeVCores == 0 {
		c.NodeVCores = d.NodeVCores
	}
	if c.NodeMemMB == 0 {
		c.NodeMemMB = d.NodeMemMB
	}
	if c.WorkerLifeMs == 0 {
		c.WorkerLifeMs = d.WorkerLifeMs
	}
	return c
}

// Validate rejects configurations outside the checker's small scope.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1 || c.Nodes > 4:
		return fmt.Errorf("mc: Nodes %d out of [1,4]", c.Nodes)
	case c.Apps < 1 || c.Apps > 3:
		return fmt.Errorf("mc: Apps %d out of [1,3]", c.Apps)
	case c.Faults < 0 || c.Faults > 1:
		return fmt.Errorf("mc: Faults %d out of [0,1]", c.Faults)
	case c.Faults > 0 && c.Nodes < 2:
		return fmt.Errorf("mc: Faults > 0 requires Nodes >= 2 (a lone crashed node can strand the workload forever)")
	case c.WorkersPerApp < 1 || c.WorkersPerApp > 2:
		return fmt.Errorf("mc: WorkersPerApp %d out of [1,2]", c.WorkersPerApp)
	case c.Scheduler != "capacity" && c.Scheduler != "opportunistic":
		return fmt.Errorf("mc: Scheduler %q (want capacity or opportunistic)", c.Scheduler)
	case c.Window < 1 || c.Window > 400:
		return fmt.Errorf("mc: Window %d out of [1,400]", c.Window)
	case c.Stride < 1 || c.Stride > c.Window:
		return fmt.Errorf("mc: Stride %d out of [1,Window]", c.Stride)
	case c.MaxCloseEvents < 100:
		return fmt.Errorf("mc: MaxCloseEvents %d < 100", c.MaxCloseEvents)
	case (c.Apps*(c.WorkersPerApp+1))*1024 > c.Nodes*c.NodeMemMB:
		return fmt.Errorf("mc: workload cannot fit the cluster even fully packed")
	}
	return nil
}

func (c Config) schedulerType() yarn.SchedulerType {
	if c.Scheduler == "opportunistic" {
		return yarn.SchedOpportunistic
	}
	return yarn.SchedCapacity
}

// Violation is one invariant breach, anchored to the choice-trace step
// (1-based index of the last applied choice) where the oracle fired.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Step      int    `json:"step"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s at step %d: %s", v.Invariant, v.Step, v.Detail)
}

// Counterexample is a serializable, replayable violation witness: the
// configuration plus the exact choice trace that reaches the violation.
type Counterexample struct {
	Version   int       `json:"version"`
	Config    Config    `json:"config"`
	Trace     []string  `json:"trace"`
	Violation Violation `json:"violation"`
	// MinimizedFrom, when non-zero, is the pre-shrinking trace length.
	MinimizedFrom int `json:"minimized_from,omitempty"`
}
