package mc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestVocabularyMatchesYarnSources keeps emitterTemplates honest against
// the yarn package itself: the set of Infof format literals in the yarn
// daemon sources must equal the set of templates the oracle declares.
// Growing yarn's log surface without re-reviewing the vocabulary (or
// declaring a template nothing emits) fails here, not silently at
// exploration time.
func TestVocabularyMatchesYarnSources(t *testing.T) {
	emitted := map[string]bool{}
	files, err := filepath.Glob(filepath.Join("..", "yarn", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("globbing yarn sources: %v (%d files)", err, len(files))
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Infof" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				t.Errorf("%s: Infof with a non-literal format; the vocabulary oracle cannot account for it",
					fset.Position(call.Pos()))
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				t.Fatalf("unquote %s: %v", lit.Value, err)
			}
			emitted[s] = true
			return true
		})
	}

	declared := map[string]bool{}
	for _, templates := range emitterTemplates {
		for _, tpl := range templates {
			declared[tpl] = true
		}
	}

	for s := range emitted {
		if !declared[s] {
			t.Errorf("yarn emits %q but the oracle vocabulary does not declare it", s)
		}
	}
	for s := range declared {
		if !emitted[s] {
			t.Errorf("oracle vocabulary declares %q but nothing in yarn emits it", s)
		}
	}
}
