package mc

import (
	"encoding/json"
	"fmt"
	"os"
)

// Replay rebuilds a world, applies the trace, and — if the trace alone
// does not reach a violation — closes the run to quiescence the way the
// explorer would. It returns the final world and the violation found, if
// any. Traces that have become illegal (e.g. after minimization removed a
// crash that a restart depended on) reproduce nothing and return nil.
func Replay(cfg Config, trace []string) (*World, *Violation) {
	cfg = cfg.withDefaults()
	w := NewWorld(cfg)
	for _, c := range trace {
		if err := w.Apply(c); err != nil {
			return w, nil
		}
		if v := w.Violation(); v != nil {
			return w, v
		}
	}
	if v := closeWorld(w, cfg.MaxCloseEvents); v != nil {
		return w, v
	}
	return w, w.CheckFinal()
}

// WriteCounterexample serializes a counterexample to path as indented
// JSON, one file per violation, replayable by cmd/sdmc -replay and by
// ReadCounterexample.
func WriteCounterexample(path string, cx *Counterexample) error {
	data, err := json.MarshalIndent(cx, "", "  ")
	if err != nil {
		return fmt.Errorf("mc: marshal counterexample: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCounterexample loads and validates a serialized counterexample.
func ReadCounterexample(path string) (*Counterexample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cx Counterexample
	if err := json.Unmarshal(data, &cx); err != nil {
		return nil, fmt.Errorf("mc: %s: %w", path, err)
	}
	if cx.Version != 1 {
		return nil, fmt.Errorf("mc: %s: unsupported version %d", path, cx.Version)
	}
	cx.Config = cx.Config.withDefaults()
	if err := cx.Config.Validate(); err != nil {
		return nil, fmt.Errorf("mc: %s: %w", path, err)
	}
	return &cx, nil
}
