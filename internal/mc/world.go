package mc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

// amProfile / workerProfile are the container shapes the toy workload
// uses; small enough that the whole workload packs onto one node, so a
// crash never strands the cluster without capacity.
var (
	amProfile     = yarn.Profile{VCores: 1, MemoryMB: 1024}
	workerProfile = yarn.Profile{VCores: 1, MemoryMB: 1024}
)

// World is one executable instance of the model: a testbed plus the toy
// applications, the choice trace applied so far, and the oracle state.
// Worlds are single-use — Restore is building a fresh World and
// re-applying a trace.
type World struct {
	Cfg Config

	bed       *testkit.Bed
	ams       []*toyAM
	submitted []bool
	crashes   int
	ticks     int
	trace     []string

	violation *Violation

	// Oracle state: per-file read cursors into the sink, and the tracked
	// state-machine positions reconstructed from the transition logs.
	cursors map[string]int
	rmConts map[string]*contTrack
	rmApps  map[string]*contTrack
	nmConts map[string]*contTrack
	vocab   map[string][]*vocabTemplate
}

// contTrack is one tracked state-machine position (shared by the RM
// container, RM app, and NM container watchers).
type contTrack struct {
	state string
}

// NewWorld builds a fresh world for the configuration. The caller is
// responsible for validating cfg first.
func NewWorld(cfg Config) *World {
	yarn.SetChaos(yarn.ChaosFlags{DisableNMEpochGuard: cfg.BreakEpochGuard})
	bed := testkit.New(testkit.Options{
		Workers: cfg.Nodes,
		Seed:    cfg.Seed,
		Cluster: func(c *cluster.Config) {
			c.Node.VCores = cfg.NodeVCores
			c.Node.MemoryMB = cfg.NodeMemMB
		},
		Yarn: func(y *yarn.Config) {
			y.Scheduler = cfg.schedulerType()
			// Tight timers keep the interesting interplay — heartbeats,
			// AM pulls, liveness expiry — inside a window a DFS can
			// exhaust.
			y.NMHeartbeatMs = 100
			y.AMHeartbeatMs = 100
			y.NodeExpiryMs = 400
			y.LocalityDelayMaxBeats = 2
			y.AMProfile = amProfile
		},
	})
	w := &World{
		Cfg:       cfg,
		bed:       bed,
		submitted: make([]bool, cfg.Apps),
		cursors:   make(map[string]int),
		rmConts:   make(map[string]*contTrack),
		rmApps:    make(map[string]*contTrack),
		nmConts:   make(map[string]*contTrack),
		vocab:     emitterVocab(),
	}
	for i := 0; i < cfg.Apps; i++ {
		w.ams = append(w.ams, &toyAM{w: w, idx: i, want: cfg.WorkersPerApp, mine: make(map[string]bool)})
	}
	return w
}

// Eng exposes the engine (read-only use: Now, NextAt).
func (w *World) Eng() *sim.Engine { return w.bed.Eng }

// RM exposes the ResourceManager for oracles and tests.
func (w *World) RM() *yarn.RM { return w.bed.RM }

// NMs exposes the NodeManagers.
func (w *World) NMs() []*yarn.NodeManager { return w.bed.NMs }

// Trace returns the choices applied so far.
func (w *World) Trace() []string { return w.trace }

// Ticks returns how many "tick" choices have been applied.
func (w *World) Ticks() int { return w.ticks }

// Violation returns the first invariant breach observed, or nil.
func (w *World) Violation() *Violation { return w.violation }

// Choice vocabulary.
const choiceTick = "tick"

func choiceSubmit(i int) string  { return "submit:" + strconv.Itoa(i) }
func choiceCrash(j int) string   { return "crash:" + strconv.Itoa(j) }
func choiceRestart(j int) string { return "restart:" + strconv.Itoa(j) }

// Apply executes one choice and then runs every step oracle. It returns
// an error only for malformed or currently-disabled choices; invariant
// breaches are reported through Violation.
func (w *World) Apply(choice string) error {
	switch {
	case choice == choiceTick:
		if !w.bed.Eng.Step() {
			return errors.New("mc: tick with an empty event queue")
		}
		w.ticks++
	case strings.HasPrefix(choice, "submit:"):
		i, err := strconv.Atoi(choice[len("submit:"):])
		if err != nil || i < 0 || i >= w.Cfg.Apps {
			return fmt.Errorf("mc: bad choice %q", choice)
		}
		if w.submitted[i] {
			return fmt.Errorf("mc: app %d already submitted", i)
		}
		w.submit(i)
	case strings.HasPrefix(choice, "crash:"):
		j, err := strconv.Atoi(choice[len("crash:"):])
		if err != nil || j < 0 || j >= w.Cfg.Nodes {
			return fmt.Errorf("mc: bad choice %q", choice)
		}
		if w.crashes >= w.Cfg.Faults {
			return errors.New("mc: crash budget exhausted")
		}
		if w.bed.NMs[j].Down() {
			return fmt.Errorf("mc: node %d already down", j)
		}
		w.bed.NMs[j].Crash()
		w.crashes++
	case strings.HasPrefix(choice, "restart:"):
		j, err := strconv.Atoi(choice[len("restart:"):])
		if err != nil || j < 0 || j >= w.Cfg.Nodes {
			return fmt.Errorf("mc: bad choice %q", choice)
		}
		if !w.bed.NMs[j].Down() {
			return fmt.Errorf("mc: node %d is not down", j)
		}
		w.bed.NMs[j].Restart()
	default:
		return fmt.Errorf("mc: unknown choice %q", choice)
	}
	w.trace = append(w.trace, choice)
	w.check()
	return nil
}

func (w *World) submit(i int) {
	am := w.ams[i]
	spec := yarn.AppSpec{
		Name:     fmt.Sprintf("mcapp-%02d", i),
		Type:     "SPARK",
		AMLaunch: yarn.LaunchSpec{Instance: yarn.InstSparkDriver, Process: am},
	}
	am.appID = w.bed.RM.Submit(spec)
	w.submitted[i] = true
}

// EnabledExternals lists the external choices legal right now.
func (w *World) EnabledExternals() []string {
	var out []string
	for i, done := range w.submitted {
		if !done {
			out = append(out, choiceSubmit(i))
		}
	}
	for j, nm := range w.bed.NMs {
		if nm.Down() {
			out = append(out, choiceRestart(j))
		} else if w.crashes < w.Cfg.Faults {
			out = append(out, choiceCrash(j))
		}
	}
	return out
}

// PendingExternals reports whether any external choice could still be
// placed later (unsubmitted apps, unused crash budget, or a node that
// could be restarted).
func (w *World) PendingExternals() bool {
	for _, done := range w.submitted {
		if !done {
			return true
		}
	}
	if w.crashes < w.Cfg.Faults {
		return true
	}
	for _, nm := range w.bed.NMs {
		if nm.Down() {
			return true
		}
	}
	return false
}

// Quiescent reports whether the world has fully drained: every app
// submitted, finished, and FINISHED; no live containers, charges, asks,
// or NM-side work anywhere.
func (w *World) Quiescent() bool {
	for i, done := range w.submitted {
		if !done || !w.ams[i].finished {
			return false
		}
	}
	s := w.bed.RM.Snapshot()
	for _, a := range s.Apps {
		if a.State != "FINISHED" || !a.Finished || len(a.Conts) > 0 {
			return false
		}
	}
	if len(s.Asks) > 0 {
		return false
	}
	for _, n := range s.Nodes {
		if n.Down {
			continue
		}
		if n.ReservedMemMB != 0 || n.ReservedVCores != 0 || n.OppMemMB != 0 || n.OppVCores != 0 ||
			n.Running != 0 || n.Localizing != 0 || n.OppQueued != 0 || n.CompletedPending != 0 {
			return false
		}
	}
	return true
}

// Fingerprint renders the full explorer-visible state: the canonical
// domain snapshot, the engine's pending-event times relative to now, and
// the toy applications' framework state. Used as the DFS visited key.
func (w *World) Fingerprint() string {
	var b strings.Builder
	b.WriteString(w.bed.RM.Snapshot().Fingerprint())
	now := w.bed.Eng.Now()
	b.WriteString("|ev")
	for _, t := range w.bed.Eng.PendingTimes() {
		fmt.Fprintf(&b, ",%d", int64(t-now))
	}
	for i, am := range w.ams {
		fmt.Fprintf(&b, "|A%d:%v:%d/%d/%d/%d:%v:%v:%v",
			i, w.submitted[i], am.want, am.done, am.alive, am.requested,
			am.dead, am.finished, am.pull != nil)
		owned := make([]string, 0, len(am.mine))
		for cid := range am.mine {
			owned = append(owned, cid)
		}
		sort.Strings(owned)
		b.WriteString(strings.Join(owned, ","))
	}
	fmt.Fprintf(&b, "|X%d", w.crashes)
	return b.String()
}

// toyAM is the model's ApplicationMaster: it registers, asks for
// WorkersPerApp worker containers, starts grants on its heartbeat, and
// unregisters exactly once when every worker has completed. It survives
// crash/relaunch the way the Spark driver does: the same Process value is
// relaunched by the RM, with its durable counters intact.
type toyAM struct {
	w     *World
	idx   int
	appID ids.AppID

	env  *yarn.ProcessEnv
	pull *sim.Ticker

	want      int
	done      int             // workers that exited successfully
	alive     int             // workers granted and not yet done
	requested int             // asks outstanding (not yet granted)
	mine      map[string]bool // container IDs of granted workers
	dead      bool            // container killed with its node, awaiting relaunch
	finished  bool            // FinishApp called (the exactly-once hook)

	finishCalls int // how many times finish fired; oracle-checked <= 1
}

// Launched is called by the NM for the first launch and for every
// RM-driven relaunch after a crash.
func (p *toyAM) Launched(env *yarn.ProcessEnv) {
	p.env = env
	p.dead = false
	// The dead attempt's asks and unpulled grants were dropped by
	// requeueAM; the books start from what is still known to be alive.
	p.requested = 0
	env.MarkFirstLog()
	rm := p.w.bed.RM
	rm.RegisterAttempt(p.appID)
	rm.SetFailureHandler(p.appID, p.onFailure)
	if p.done >= p.want {
		// Every worker finished while the AM was being relaunched.
		p.finish()
		return
	}
	if need := p.want - p.done - p.alive; need > 0 {
		p.ask(need)
	}
	if p.w.Cfg.schedulerType() == yarn.SchedCapacity {
		if p.pull != nil {
			p.pull.Stop()
		}
		period := p.w.bed.RM.Cfg.AMHeartbeatMs
		p.pull = sim.NewTicker(env.Eng, period, period, p.onPull)
	}
}

// Killed marks the AM dead with its node; the RM relaunches it.
func (p *toyAM) Killed() {
	if p.finished {
		return
	}
	p.dead = true
	if p.pull != nil {
		p.pull.Stop()
		p.pull = nil
	}
}

func (p *toyAM) ask(n int) {
	p.requested += n
	rm := p.w.bed.RM
	if p.w.Cfg.schedulerType() == yarn.SchedOpportunistic {
		rm.AskOpportunistic(p.appID, n, workerProfile, func(allocs []*yarn.Allocation) {
			for _, al := range allocs {
				p.requested--
				p.alive++
				p.mine[al.Container.String()] = true
				al.Node.StartContainer(al, p.workerSpec())
			}
		})
		return
	}
	rm.Ask(p.appID, n, workerProfile)
}

func (p *toyAM) onPull() {
	if p.dead || p.finished {
		return
	}
	for _, al := range p.w.bed.RM.Pull(p.appID) {
		p.requested--
		p.alive++
		p.mine[al.Container.String()] = true
		al.Node.StartContainer(al, p.workerSpec())
	}
}

func (p *toyAM) workerSpec() yarn.LaunchSpec {
	return yarn.LaunchSpec{Instance: yarn.InstSparkExecutor, Process: &toyWorker{am: p}}
}

// onFailure is the RM's report that one of the app's containers was lost
// or failed to launch. The books are always corrected; a replacement is
// requested only by a live attempt (a relaunching AM recomputes its needs
// in Launched).
func (p *toyAM) onFailure(al *yarn.Allocation) {
	cid := al.Container.String()
	if p.mine[cid] {
		delete(p.mine, cid)
		p.alive--
	} else {
		p.requested--
	}
	if p.finished || p.dead {
		return
	}
	p.ask(1)
}

func (p *toyAM) workerDone(al *yarn.Allocation) {
	cid := al.Container.String()
	if !p.mine[cid] {
		return
	}
	delete(p.mine, cid)
	p.alive--
	p.done++
	if p.done >= p.want && !p.dead && !p.finished {
		p.finish()
	}
}

func (p *toyAM) finish() {
	if p.finished {
		return
	}
	p.finished = true
	p.finishCalls++
	if p.pull != nil {
		p.pull.Stop()
		p.pull = nil
	}
	p.w.bed.RM.FinishApp(p.appID)
	p.env.Exit()
}

// toyWorker runs for WorkerLifeMs and exits, reporting back to its AM.
type toyWorker struct {
	am *toyAM
}

func (p *toyWorker) Launched(env *yarn.ProcessEnv) {
	env.MarkFirstLog()
	env.Eng.After(p.am.w.Cfg.WorkerLifeMs, func() {
		if env.Exited() { // died with its node; the RM reports the loss
			return
		}
		env.Exit()
		p.am.workerDone(env.Alloc)
	})
}
