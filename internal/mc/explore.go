package mc

import (
	"fmt"
)

// Result summarizes one exploration.
type Result struct {
	Config Config
	// Branches counts interleavings driven all the way to quiescence.
	Branches int
	// StatesVisited counts distinct state fingerprints expanded; Deduped
	// counts branches pruned because their fingerprint was already seen.
	StatesVisited int
	Deduped       int
	// Violations holds the first counterexample found per invariant
	// (unminimized — run Minimize on each); Counts tallies every hit.
	Violations []*Counterexample
	Counts     map[string]int
}

// Explore exhaustively drives the configured small scope: a DFS over
// choice traces where externals (submits, crashes, restarts) are injected
// at stride-spaced insertion points within the first Window engine
// events, and every branch is then closed deterministically to
// quiescence with the oracles checked at each event boundary.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &explorer{
		cfg:     cfg,
		visited: make(map[string]bool),
		firstCx: make(map[string]*Counterexample),
		res:     &Result{Config: cfg, Counts: make(map[string]int)},
	}
	e.explore(nil)
	return e.res, nil
}

type explorer struct {
	cfg     Config
	visited map[string]bool
	firstCx map[string]*Counterexample
	res     *Result
}

// replay rebuilds the world at a trace prefix. Prefixes handed to replay
// are violation-free by construction, so any failure is an explorer bug.
func (e *explorer) replay(trace []string) *World {
	w := NewWorld(e.cfg)
	for _, c := range trace {
		if err := w.Apply(c); err != nil {
			panic(fmt.Sprintf("mc: replaying known-good prefix %v: %v", trace, err))
		}
		if v := w.Violation(); v != nil {
			panic(fmt.Sprintf("mc: known-good prefix %v violates %s", trace, v.Invariant))
		}
	}
	return w
}

func (e *explorer) explore(trace []string) {
	w := e.replay(trace)
	choices := e.childChoices(w)
	if len(choices) == 0 {
		e.closeBranch(w)
		return
	}
	for _, c := range choices {
		cw := e.replay(trace)
		if err := cw.Apply(c); err != nil {
			panic(fmt.Sprintf("mc: enabled choice %q failed: %v", c, err))
		}
		if v := cw.Violation(); v != nil {
			e.record(cw, v)
			continue
		}
		fp := cw.Fingerprint()
		if e.visited[fp] {
			e.res.Deduped++
			continue
		}
		e.visited[fp] = true
		e.res.StatesVisited++
		e.explore(append(append([]string(nil), trace...), c))
	}
}

// childChoices enumerates the branch points at the current state: the
// enabled externals when the event count sits on a stride boundary, plus
// "tick". An empty result means the branch should be closed — either the
// window is exhausted or no external could ever be placed again.
func (e *explorer) childChoices(w *World) []string {
	if w.Ticks() >= e.cfg.Window || !w.PendingExternals() {
		return nil
	}
	var out []string
	if w.Ticks()%e.cfg.Stride == 0 {
		out = append(out, w.EnabledExternals()...)
	}
	return append(out, choiceTick)
}

// closeBranch force-places any submissions the window never made (the
// configuration must be realized on every branch; unused crash budget and
// never-restarted nodes are legitimate outcomes) and then runs the world
// to quiescence, oracles checked at every event.
func (e *explorer) closeBranch(w *World) {
	if v := closeWorld(w, e.cfg.MaxCloseEvents); v != nil {
		e.record(w, v)
		return
	}
	if v := w.CheckFinal(); v != nil {
		e.record(w, v)
		return
	}
	e.res.Branches++
}

// closeWorld is the shared closing run used by the explorer and by
// counterexample replay: force remaining submissions, then tick until
// quiescence or the event budget runs out.
func closeWorld(w *World, maxEvents int) *Violation {
	for i := range w.submitted {
		if w.submitted[i] {
			continue
		}
		if err := w.Apply(choiceSubmit(i)); err != nil {
			return &Violation{Invariant: "explorer-internal",
				Detail: fmt.Sprintf("forced %s failed: %v", choiceSubmit(i), err), Step: len(w.trace)}
		}
		if v := w.Violation(); v != nil {
			return v
		}
	}
	for steps := 0; !w.Quiescent(); steps++ {
		if steps >= maxEvents {
			v := &Violation{Invariant: "no-quiescence",
				Detail: fmt.Sprintf("not quiescent after %d closing events: %s; charged=%v",
					maxEvents, w.RM().DumpState(), w.RM().ChargedContainers())}
			w.fail(v)
			return v
		}
		if err := w.Apply(choiceTick); err != nil {
			v := &Violation{Invariant: "engine-drained",
				Detail: "event queue drained before quiescence: " + w.RM().DumpState()}
			w.fail(v)
			return v
		}
		if v := w.Violation(); v != nil {
			return v
		}
	}
	return nil
}

// record keeps the first counterexample per invariant and tallies all.
func (e *explorer) record(w *World, v *Violation) {
	e.res.Counts[v.Invariant]++
	if e.firstCx[v.Invariant] != nil {
		return
	}
	cx := &Counterexample{
		Version:   1,
		Config:    e.cfg,
		Trace:     append([]string(nil), w.Trace()...),
		Violation: *v,
	}
	e.firstCx[v.Invariant] = cx
	e.res.Violations = append(e.res.Violations, cx)
}
