package sim

import (
	"encoding/json"
	"sort"
	"sync"
)

// Span names shared by the two trace exporters: the ground-truth recorder
// below (components record spans at the instant things actually happen in
// the simulation) and SDchecker's mined exporter (core builds the same
// spans from log timestamps alone). Because both sides use the same
// vocabulary and track naming, the two Chrome trace files are diffable
// track-by-track in chrome://tracing or Perfetto — a visual check of how
// faithfully the log-mined picture reproduces reality.
const (
	SpanAM           = "am"           // app submitted -> AppMaster registered
	SpanAllocation   = "allocation"   // START_ALLO -> END_ALLO (driver-side)
	SpanAcquisition  = "acquisition"  // container ALLOCATED -> ACQUIRED
	SpanLocalization = "localization" // container LOCALIZING -> SCHEDULED
	SpanLaunching    = "launching"    // container SCHEDULED -> RUNNING
	SpanDriver       = "driver"       // driver first log -> RM registration
	SpanExecutor     = "executor"     // executor first log -> first task
)

// AppTrack is the thread name for application-level spans (everything not
// tied to a single container).
const AppTrack = "app"

// TraceSpan is one complete span on a (process, thread) track. Process
// groups tracks (one process per application), Thread is the track within
// it (a container ID, or AppTrack). Start and End are engine milliseconds
// (or epoch milliseconds, when the producer already works in wall time —
// the renderer just adds an offset).
type TraceSpan struct {
	Process string
	Thread  string
	Name    string
	Start   Time
	End     Time
	// Args, when non-nil, annotate the rendered trace event (shown in
	// the Perfetto detail pane). Keys render in sorted order, keeping
	// exports byte-deterministic.
	Args map[string]string
}

// Recorder collects ground-truth spans from instrumented components. All
// methods are safe on a nil receiver, so instrumentation sites stay
// unconditional; attach a recorder only when the timeline is wanted.
type Recorder struct {
	mu    sync.Mutex
	spans []TraceSpan
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one span. Spans with End < Start are recorded as
// zero-length at Start (a defensive clamp; simulated time cannot run
// backwards, but a forgotten start leaves Start == 0).
func (r *Recorder) Record(s TraceSpan) {
	if r == nil {
		return
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (r *Recorder) Spans() []TraceSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceSpan(nil), r.spans...)
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// ChromeTrace renders the recorder's spans; see the package function.
func (r *Recorder) ChromeTrace(epochMS int64) ([]byte, error) {
	return ChromeTrace(r.Spans(), epochMS)
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (Perfetto-compatible). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders spans as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. epochMS is added to every
// timestamp (use the cluster epoch for engine-time spans, 0 for spans
// already in epoch milliseconds), so ground-truth and mined exports of
// the same run land on the same absolute timeline.
//
// Track identity is deterministic: processes and threads are numbered in
// lexicographic name order, and metadata events carry the names, so two
// exports of the same scenario are diffable track-by-track.
func ChromeTrace(spans []TraceSpan, epochMS int64) ([]byte, error) {
	sorted := append([]TraceSpan(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Process != b.Process {
			return a.Process < b.Process
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Name < b.Name
	})

	pids := map[string]int{}
	type ptKey struct {
		p, t string
	}
	tids := map[ptKey]int{}
	nextTIDs := map[string]int{}
	events := make([]chromeEvent, 0, 2*len(sorted))
	for _, s := range sorted {
		pid, ok := pids[s.Process]
		if !ok {
			pid = len(pids) + 1
			pids[s.Process] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]string{"name": s.Process},
			})
		}
		tid, ok := tids[ptKey{s.Process, s.Thread}]
		if !ok {
			nextTIDs[s.Process]++
			tid = nextTIDs[s.Process]
			tids[ptKey{s.Process, s.Thread}] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": s.Thread},
			})
		}
		dur := int64(s.End-s.Start) * 1000
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "scheduling",
			Ph:   "X",
			TS:   (epochMS + int64(s.Start)) * 1000,
			Dur:  &dur,
			PID:  pid,
			TID:  tid,
			Args: s.Args,
		})
	}
	return json.MarshalIndent(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}
