package sim

// Ticker fires a callback on a fixed period, with an optional phase offset
// so that many periodic components (e.g. NodeManager heartbeats) do not
// fire in lockstep. It mirrors the heartbeat timers inside YARN daemons.
type Ticker struct {
	eng    *Engine
	period Duration
	fn     func()
	ev     *Event
	live   bool
}

// NewTicker schedules fn every period milliseconds, first firing at
// now+offset. It panics on a non-positive period.
func NewTicker(eng *Engine, period, offset Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if offset < 0 {
		offset = 0
	}
	t := &Ticker{eng: eng, period: period, fn: fn, live: true}
	t.ev = eng.After(offset, t.tick)
	return t
}

func (t *Ticker) tick() {
	if !t.live {
		return
	}
	t.fn()
	if t.live { // fn may have stopped the ticker
		t.ev = t.eng.After(t.period, t.tick)
	}
}

// Stop cancels future ticks. Safe to call repeatedly.
func (t *Ticker) Stop() {
	if !t.live {
		return
	}
	t.live = false
	t.eng.Cancel(t.ev)
}

// Period returns the tick period.
func (t *Ticker) Period() Duration { return t.period }
