package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// ExampleEngine shows the discrete-event basics: schedule, run, observe
// virtual time.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.At(100, func() {
		fmt.Println("first event at", eng.Now())
		eng.After(50, func() { fmt.Println("chained event at", eng.Now()) })
	})
	end := eng.Run()
	fmt.Println("drained at", end)
	// Output:
	// first event at 100
	// chained event at 150
	// drained at 150
}

// ExampleNewTicker shows a heartbeat-style periodic callback.
func ExampleNewTicker() {
	eng := sim.NewEngine()
	n := 0
	var tk *sim.Ticker
	tk = sim.NewTicker(eng, 1000, 0, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	eng.Run()
	fmt.Println(n, "heartbeats, clock at", eng.Now())
	// Output: 3 heartbeats, clock at 2000
}
