package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		eng.At(at, func() { got = append(got, at) })
	}
	eng.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(100, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order %v not FIFO", got)
		}
	}
}

func TestAfterAdvancesFromNow(t *testing.T) {
	eng := NewEngine()
	var at Time
	eng.At(50, func() {
		eng.After(25, func() { at = eng.Now() })
	})
	eng.Run()
	if at != 75 {
		t.Fatalf("After fired at %d, want 75", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(10, func() { fired = true })
	eng.Cancel(ev)
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	eng.Cancel(ev) // double-cancel is a no-op
	eng.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	eng := NewEngine()
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, eng.At(Time(i*10), func() { got = append(got, i) }))
	}
	eng.Cancel(evs[2])
	eng.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.At(10, func() { fired++ })
	eng.At(100, func() { fired++ })
	end := eng.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired %d events before deadline, want 1", fired)
	}
	if end != 50 {
		t.Fatalf("clock at %d, want deadline 50", end)
	}
	eng.Run()
	if fired != 2 {
		t.Fatalf("remaining event not fired on resume")
	}
}

func TestStopHaltsRun(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.At(10, func() { fired++; eng.Stop() })
	eng.At(20, func() { fired++ })
	eng.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt: fired=%d", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(50, func() {})
	})
	eng.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewEngine().At(10, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestFiredAndPendingCounters(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 7; i++ {
		eng.At(Time(i), func() {})
	}
	if eng.Pending() != 7 {
		t.Fatalf("pending %d, want 7", eng.Pending())
	}
	eng.Run()
	if eng.Fired() != 7 || eng.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d, want 7/0", eng.Fired(), eng.Pending())
	}
}

// Property: for any set of timestamps, execution order is the sorted
// order of the scheduled times.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(stamps []uint16) bool {
		eng := NewEngine()
		var got []Time
		for _, s := range stamps {
			at := Time(s)
			eng.At(at, func() { got = append(got, at) })
		}
		eng.Run()
		want := make([]Time, 0, len(stamps))
		for _, s := range stamps {
			want = append(want, Time(s))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards across any run.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		ok := true
		last := Time(-1)
		var spawn func(depth int)
		spawn = func(depth int) {
			if eng.Now() < last {
				ok = false
			}
			last = eng.Now()
			if depth <= 0 {
				return
			}
			eng.After(Duration(r.Intn(50)), func() { spawn(depth - 1) })
		}
		for i := 0; i < int(n%20); i++ {
			eng.At(Time(r.Intn(100)), func() { spawn(3) })
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := NewEngine()
	var fires []Time
	tk := NewTicker(eng, 10, 5, func() {
		fires = append(fires, eng.Now())
	})
	eng.At(46, func() { tk.Stop() })
	eng.Run()
	want := []Time{5, 15, 25, 35, 45}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", fires, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	eng := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(eng, 10, 0, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	eng.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times after in-callback stop, want 3", n)
	}
	tk.Stop() // idempotent
}

func TestTickerNegativeOffsetClamped(t *testing.T) {
	eng := NewEngine()
	first := Time(-1)
	tk := NewTicker(eng, 10, -5, func() {
		if first < 0 {
			first = eng.Now()
		}
	})
	eng.RunUntil(25)
	tk.Stop()
	if first != 0 {
		t.Fatalf("first tick at %d, want 0", first)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, 0, func() {})
}
