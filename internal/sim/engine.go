// Package sim provides a deterministic discrete-event simulation engine
// with millisecond-precision virtual time.
//
// All simulated components (YARN daemons, Spark drivers, HDFS, ...) run as
// callbacks on a single Engine. Events scheduled for the same instant fire
// in scheduling order, which makes every run byte-for-byte reproducible.
// Virtual time is an int64 count of milliseconds since the simulation
// epoch; one millisecond is also the timestamp precision of log4j, so the
// engine's resolution matches the precision SDchecker can observe.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Time is a virtual timestamp in milliseconds since the simulation epoch.
type Time int64

// Duration is a span of virtual time in milliseconds.
type Duration = int64

// Millisecond, Second and Minute are convenience units for Duration values.
const (
	Millisecond Duration = 1
	Second      Duration = 1000
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// MaxTime is the largest representable virtual timestamp.
const MaxTime Time = math.MaxInt64

// Event is a scheduled callback. It is exposed so callers can cancel
// pending events (e.g. heartbeat timers torn down on daemon shutdown).
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// Time returns the virtual time the event fires at.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	stopped bool
	fired   uint64
	met     engineMetrics
}

// engineMetrics are the engine's observability hooks. All fields are nil
// until Instrument is called; the increment sites rely on the metrics
// package's nil-safety, so an uninstrumented engine pays nothing but a
// nil check.
type engineMetrics struct {
	fired       *metrics.Counter   // callbacks executed
	scheduled   *metrics.Counter   // events pushed via At/After
	pending     *metrics.Gauge     // current queue depth
	sliceWallMS *metrics.Histogram // wall-clock per Run/RunUntil slice
}

// Instrument registers the engine's counters, queue-depth gauge, and
// per-RunUntil-slice wall-clock histogram in reg. Call once, before
// running; a nil registry is a no-op.
func (e *Engine) Instrument(reg *metrics.Registry) {
	e.met.fired = reg.Counter("sim_events_fired_total")
	e.met.scheduled = reg.Counter("sim_events_scheduled_total")
	e.met.pending = reg.Gauge("sim_queue_depth")
	e.met.sliceWallMS = reg.Histogram("sim_run_slice_wall_ms", metrics.DefBuckets)
}

// NewEngine returns an engine positioned at virtual time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for run statistics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it is always a simulation bug, never a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	e.met.scheduled.Inc()
	e.met.pending.Set(int64(len(e.pq)))
	return ev
}

// After schedules fn to run d milliseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+Time(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.pq, ev.index)
	ev.index = -1
	ev.fn = nil
	e.met.pending.Set(int64(len(e.pq)))
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time of the last event executed.
func (e *Engine) Run() Time {
	return e.RunUntil(MaxTime)
}

// Step fires exactly the next pending event, advancing the clock to its
// timestamp, and reports whether an event fired. It is the single-step
// seam the small-scope model checker (internal/mc) drives: an explorer
// that owns the event granularity can interleave external commands
// (submissions, faults) between any two internal events.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	next := e.pq[0]
	heap.Pop(&e.pq)
	next.index = -1
	e.now = next.at
	fn := next.fn
	next.fn = nil
	e.fired++
	e.met.fired.Inc()
	e.met.pending.Set(int64(len(e.pq)))
	fn()
	return true
}

// NextAt returns the timestamp of the next pending event, or MaxTime when
// the queue is empty.
func (e *Engine) NextAt() Time {
	if len(e.pq) == 0 {
		return MaxTime
	}
	return e.pq[0].at
}

// PendingTimes returns the sorted timestamps of every pending event. The
// model checker folds them (relative to Now) into its canonical state
// fingerprint: two states with identical domain state but different
// pending-timer structure must not be merged.
func (e *Engine) PendingTimes() []Time {
	out := make([]Time, len(e.pq))
	for i, ev := range e.pq {
		out[i] = ev.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last executed event (or at deadline if an event beyond it
// remains queued).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	var wallStart time.Time
	if e.met.sliceWallMS != nil {
		//lint:allow determinism sim_run_slice_wall_ms deliberately measures host wall time per run slice; it never feeds simulation state or reports
		wallStart = time.Now()
	}
	for len(e.pq) > 0 && !e.stopped {
		next := e.pq[0]
		if next.at > deadline {
			e.now = deadline
			break
		}
		heap.Pop(&e.pq)
		next.index = -1
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		e.met.fired.Inc()
		fn()
	}
	e.met.pending.Set(int64(len(e.pq)))
	if e.met.sliceWallMS != nil {
		//lint:allow determinism observability-only wall-time histogram; simulation state and reports derive solely from the virtual clock
		e.met.sliceWallMS.Observe(float64(time.Since(wallStart)) / float64(time.Millisecond))
	}
	return e.now
}

// eventHeap orders events by (time, insertion sequence) so simultaneous
// events fire in the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
