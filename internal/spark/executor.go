package spark

import (
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// rpcDelay models a control-plane RPC between two nodes. Under normal
// conditions it is the base latency; when either NIC is badly
// oversubscribed, the RPC can hit a retransmission timeout — the paper's
// observation that "heartbeats that executors used to register with the
// driver and assign Spark tasks can be blocked under network
// interference" (§IV-E).
func rpcDelay(r *rng.Source, baseLo, baseHi float64, nodes ...*cluster.Node) int64 {
	d := r.Uniform(baseLo, baseHi)
	var worst float64
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if l := n.Net.Load(); l > worst {
			worst = l
		}
	}
	if worst > 1.5 {
		p := 0.15 * (worst - 1.5)
		if p > 0.5 {
			p = 0.5
		}
		if r.Float64() < p {
			d += r.Uniform(900, 3200) // TCP retransmission territory
		}
	}
	return int64(d)
}

// executor is the CoarseGrainedExecutorBackend process running inside one
// YARN container. After JVM boot and warm-up it registers with the driver
// and then sits idle until tasks arrive — the idleness the paper's Fig 10
// illustrates, charged to the executor delay.
type executor struct {
	d     *driver
	env   *yarn.ProcessEnv
	idx   int
	slots int

	log      logf
	taskLog  logf
	busy     int
	stopped  bool
	gotFirst bool

	// tids are the task IDs currently executing here. When the executor
	// dies with its node the driver reclaims them for re-execution.
	tids map[int]bool

	registeredAt sim.Time
	firstLogAt   sim.Time
}

// Killed implements yarn.Killable: the container died with its node. The
// process is simply gone — the driver learns of the loss through the RM
// and reclaims this executor's in-flight tasks.
func (e *executor) Killed() { e.stopped = true }

// driverLost shuts the executor down after the driver's AM container died;
// the relaunched AM attempt starts over with fresh executors.
func (e *executor) driverLost() {
	if e.stopped {
		return
	}
	e.stopped = true
	if e.env == nil || e.env.Exited() {
		return // never launched, or died in the same node crash
	}
	e.log.Infof("Driver disassociated! Shutting down.")
	e.env.Exit()
}

func (e *executor) registered() bool { return e.registeredAt > 0 }

func (e *executor) free() int { return e.slots - e.busy }

// Launched boots the executor JVM, emits the FIRST_LOG line (Table I
// message 13), warms up, and registers with the driver.
func (e *executor) Launched(env *yarn.ProcessEnv) {
	e.env = env
	if e.stopped {
		env.Exit() // the job finished while this container was starting
		return
	}
	e.log = env.Logger(ClassExecBackend)
	e.taskLog = env.Logger(ClassExecutor)
	cfg := e.d.app.cfg
	cfg.ExecutorJVM.Boot(env.Eng, env.Node, env.Rng, env.JVMReuse,
		func() {
			if e.stopped {
				return
			}
			e.firstLogAt = env.Eng.Now()
			e.log.Infof("Started daemon with process name: %d@%s", 20000+e.idx, env.Node.Name)
			env.MarkFirstLog()
		},
		func() {
			if e.stopped {
				return
			}
			e.log.Infof("Connecting to driver: spark://CoarseGrainedScheduler@%s", e.d.env.Node.Name)
			rpc := rpcDelay(env.Rng, 6, 24, env.Node, e.d.env.Node)
			env.Eng.After(rpc, func() {
				if e.stopped {
					return
				}
				e.log.Infof("Successfully registered with driver")
				e.d.executorRegistered(e)
			})
		})
}

// runTask executes one task: optional HDFS input read, then CPU work.
// The first assignment logs the FIRST_TASK event (Table I message 14).
func (e *executor) runTask(tid int, st *StageProfile, done func()) {
	if e.stopped {
		return
	}
	e.busy++
	if e.tids == nil {
		e.tids = make(map[int]bool, e.slots)
	}
	e.tids[tid] = true
	if !e.gotFirst {
		e.gotFirst = true
		e.log.Infof("Got assigned task %d", tid)
		e.env.Tracer().Record(sim.TraceSpan{
			Process: e.d.app.ID.String(), Thread: e.env.Alloc.Container.String(),
			Name: sim.SpanExecutor, Start: e.firstLogAt, End: e.env.Eng.Now(),
		})
	}
	vcores := st.TaskCPUVcores
	if vcores <= 0 {
		vcores = 1
	}
	finish := func(sim.Time) {
		if e.stopped {
			return // a lost task stays in tids for the driver to reclaim
		}
		delete(e.tids, tid)
		e.busy--
		done()
	}
	compute := func(sim.Time) {
		if e.stopped {
			return
		}
		if st.TaskCPUSec <= 0 {
			e.env.Eng.After(1, func() { finish(e.env.Eng.Now()) })
			return
		}
		e.env.Node.Compute(st.TaskCPUSec, vcores, finish)
	}
	// Task dispatch RPC from the driver.
	dispatch := rpcDelay(e.env.Rng, 2, 8, e.env.Node, e.d.env.Node)
	e.env.Eng.After(dispatch, func() {
		if e.stopped {
			return
		}
		if st.TaskInputMB <= 0 {
			compute(e.env.Eng.Now())
			return
		}
		var f *hdfs.File
		if st.InputPath != "" {
			f = e.d.app.fs.Lookup(st.InputPath)
			if f == nil {
				f = e.d.app.fs.Create(st.InputPath, st.TaskInputMB*float64(st.Tasks), nil)
			}
		}
		if st.TaskIODemandMBps > 0 {
			// Streaming scan: the input read and the compute proceed
			// concurrently; the task ends when both are done.
			remaining := 2
			join := func(sim.Time) {
				remaining--
				if remaining == 0 {
					finish(e.env.Eng.Now())
				}
			}
			e.d.app.fs.ReadPaced(e.env.Node, f, st.TaskInputMB, st.TaskIODemandMBps, join)
			if st.TaskCPUSec <= 0 {
				join(e.env.Eng.Now())
			} else {
				e.env.Node.Compute(st.TaskCPUSec, vcores, func(at sim.Time) {
					if e.stopped {
						return
					}
					join(at)
				})
			}
			return
		}
		if f != nil {
			e.d.app.fs.ReadData(e.env.Node, f, st.TaskInputMB, compute)
		} else {
			e.d.app.fs.ReadAnonymous(e.env.Node, st.TaskInputMB, compute)
		}
	})
}

// stop terminates the executor container.
func (e *executor) stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	if e.env == nil {
		return // container never launched (still localizing/queued)
	}
	e.log.Infof("Driver commanded a shutdown")
	e.env.Exit()
}
