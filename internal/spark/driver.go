package spark

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// App is a submitted Spark application.
type App struct {
	ID  ids.AppID
	rm  *yarn.RM
	fs  *hdfs.FS
	cfg Config

	driver *driver

	// OnFinished, when set before completion, fires when the job body
	// ends (before the RM unregistration round trips).
	OnFinished func(at sim.Time)
}

// Submit submits the application to the ResourceManager and returns a
// handle. The driver process will be launched in the AM container once
// YARN allocates it.
func Submit(rm *yarn.RM, fs *hdfs.FS, cfg Config) *App {
	if cfg.Executors <= 0 {
		panic("spark: need at least one executor")
	}
	a := &App{rm: rm, fs: fs, cfg: cfg}
	a.driver = &driver{app: a}
	spec := yarn.AppSpec{
		Name:  cfg.App.Name,
		Type:  "SPARK",
		Queue: cfg.Queue,
		AMLaunch: yarn.LaunchSpec{
			Resources: cfg.driverResources(),
			Instance:  yarn.InstSparkDriver,
			Runtime:   cfg.Runtime,
			Process:   a.driver,
		},
	}
	a.ID = rm.Submit(spec)
	return a
}

// Finished reports whether the job body has completed.
func (a *App) Finished() bool { return a.driver.finished }

// driver is the Spark ApplicationMaster process (cluster deploy mode).
type driver struct {
	app *App
	env *yarn.ProcessEnv

	amLog    logf
	allocLog logf
	ctxLog   logf

	// firstLogAt / alloStartAt anchor the ground-truth driver and
	// allocation spans.
	firstLogAt  sim.Time
	alloStartAt sim.Time

	// Allocation state.
	allocated   int
	launched    int
	extras      []*yarn.Allocation // acquired but never used (SPARK-21562)
	endAlloLogd bool
	pullEvery   int64

	// Executor / gate state.
	executors  []*executor
	execByCID  map[string]*executor
	registered int
	gateOpen   bool
	gateTimer  *sim.Event
	pullActive bool

	// User-init and job state.
	initDone    bool
	started     bool
	finished    bool
	stage       int
	nextTask    int
	outstanding int

	// Failure-recovery state: retry holds task IDs reclaimed from dead
	// executors (re-dispatched before fresh tasks); amRetry marks that the
	// AM container died with its node and the next Launched is a relaunch;
	// pullGen invalidates allocator heartbeat loops from a dead attempt.
	retry   []int
	amRetry bool
	pullGen int
}

// logf narrows log4j.Logger to the one method processes use.
type logf interface {
	Infof(format string, args ...any)
}

// Killed implements yarn.Killable for the AM container: the driver died
// with its node. Surviving executors lose their driver and shut down; the
// RM relaunches the AM in a new container, and Launched then rebuilds the
// attempt from scratch.
func (d *driver) Killed() {
	if d.finished {
		return // job already over; nothing to recover
	}
	d.finished = true // halt every pending callback until the relaunch
	d.amRetry = true
	if d.gateTimer != nil {
		d.env.Eng.Cancel(d.gateTimer)
		d.gateTimer = nil
	}
	for _, e := range d.executors {
		e.driverLost()
	}
	if len(d.extras) > 0 {
		d.app.rm.ReleaseGrants(d.app.ID, d.extras)
		d.extras = nil
	}
}

// resetForRetry clears attempt-scoped state before a relaunched AM boots:
// allocation counts, executors, gate and job progress all start over, like
// a fresh application attempt's driver.
func (d *driver) resetForRetry() {
	d.amRetry = false
	d.finished = false
	d.executors, d.execByCID = nil, nil
	d.extras = nil
	d.allocated, d.launched, d.registered = 0, 0, 0
	d.endAlloLogd = false
	d.gateOpen = false
	d.initDone, d.started = false, false
	d.stage, d.nextTask, d.outstanding = 0, 0, 0
	d.retry = nil
	d.pullActive = false
	d.pullGen++
}

// Launched runs the driver JVM and then the ApplicationMaster sequence.
func (d *driver) Launched(env *yarn.ProcessEnv) {
	if d.amRetry {
		d.resetForRetry()
	}
	d.env = env
	d.amLog = env.Logger(ClassAppMaster)
	d.allocLog = env.Logger(ClassYarnAllocator)
	d.ctxLog = env.Logger(ClassSparkContext)
	cfg := d.app.cfg
	cfg.DriverJVM.Boot(env.Eng, env.Node, env.Rng, env.JVMReuse,
		func() {
			// FIRST_LOG (Table I message 9).
			d.firstLogAt = env.Eng.Now()
			d.amLog.Infof("Preparing Local resources")
			env.MarkFirstLog()
		},
		d.contextInit)
}

// contextInit models SparkContext construction (driver-side CPU), after
// which the AM registers with the RM — the end of the driver delay.
func (d *driver) contextInit() {
	work := (d.app.cfg.DriverJVM.WarmupVcoreSec*0.4 + 2.6) * d.env.Rng.Uniform(0.85, 1.35)
	d.env.Node.Compute(work, 2, func(sim.Time) {
		d.ctxLog.Infof("Running Spark version 2.2.0")
		// REGISTER (Table I message 10).
		d.amLog.Infof("Registered with ResourceManager as %s",
			ids.AttemptID{App: d.app.ID, Attempt: 1})
		d.app.rm.RegisterAttempt(d.app.ID)
		d.env.Tracer().Record(sim.TraceSpan{
			Process: d.app.ID.String(), Thread: d.env.Alloc.Container.String(),
			Name: sim.SpanDriver, Start: d.firstLogAt, End: d.env.Eng.Now(),
		})
		d.startAllocation()
		d.startUserInit()
	})
}

// startAllocation emits START_ALLO and requests executor containers.
func (d *driver) startAllocation() {
	cfg := d.app.cfg
	want := cfg.overRequestCount()
	d.execByCID = make(map[string]*executor, want)
	d.app.rm.SetFailureHandler(d.app.ID, d.onContainerFailed)
	// START_ALLO (Table I message 11; manually added by the authors).
	d.alloStartAt = d.env.Eng.Now()
	d.allocLog.Infof("SDCHECKER START_ALLO Requesting %d executor containers", want)
	d.gateTimer = d.env.Eng.After(cfg.RegisteredWaitMaxMs, func() {
		d.gateTimer = nil
		d.maybeStart()
	})
	if cfg.Opportunistic {
		d.app.rm.AskOpportunistic(d.app.ID, want, cfg.ExecutorProfile, func(allocs []*yarn.Allocation) {
			for _, al := range allocs {
				d.onGrant(al)
			}
		})
		return
	}
	d.app.rm.Ask(d.app.ID, want, cfg.ExecutorProfile)
	d.pullEvery = cfg.InitialAllocIntervalMs
	d.pullActive = true
	d.schedulePull()
}

// schedulePull arms the next allocator heartbeat, tagged with the current
// attempt generation so loops from a dead AM attempt die silently.
func (d *driver) schedulePull() {
	gen := d.pullGen
	d.env.Eng.After(d.pullEvery, func() {
		if gen != d.pullGen {
			return
		}
		d.pull()
	})
}

// onContainerFailed is the AM-side recovery path: the failed executor is
// written off and a replacement container requested, as Spark's
// YarnAllocator does for preempted or failed containers.
func (d *driver) onContainerFailed(al *yarn.Allocation) {
	if d.finished {
		return
	}
	key := al.Container.String()
	e := d.execByCID[key]
	if e == nil {
		return // an unused extra container failed; nothing to replace
	}
	delete(d.execByCID, key)
	for i, x := range d.executors {
		if x == e {
			d.executors = append(d.executors[:i], d.executors[i+1:]...)
			break
		}
	}
	if e.registered() {
		d.registered--
	}
	e.stopped = true
	d.launched--
	d.allocated--
	if len(e.tids) > 0 {
		// The executor died mid-task (node loss): hand its tasks back to
		// the scheduler for re-execution on surviving executors.
		tids := make([]int, 0, len(e.tids))
		for tid := range e.tids {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			d.outstanding--
			d.retry = append(d.retry, tid)
		}
		e.tids = nil
	}
	d.allocLog.Infof("Container %s failed to launch; requesting a replacement executor", al.Container)
	d.redispatch()
	cfg := d.app.cfg
	if cfg.Opportunistic {
		d.app.rm.AskOpportunistic(d.app.ID, 1, cfg.ExecutorProfile, func(allocs []*yarn.Allocation) {
			for _, a := range allocs {
				d.onGrant(a)
			}
		})
		return
	}
	d.app.rm.Ask(d.app.ID, 1, cfg.ExecutorProfile)
	if !d.pullActive {
		d.pullEvery = cfg.InitialAllocIntervalMs
		d.pullActive = true
		d.schedulePull()
	}
}

// redispatch pushes reclaimed tasks onto surviving executors and advances
// the stage if the loss left nothing outstanding and nothing to retry.
func (d *driver) redispatch() {
	if !d.started || d.finished || d.stage >= len(d.app.cfg.App.Stages) {
		return
	}
	for _, e := range d.executors {
		d.fillExecutor(e)
	}
	st := &d.app.cfg.App.Stages[d.stage]
	if d.outstanding == 0 && len(d.retry) == 0 && d.nextTask >= st.Tasks {
		d.stage++
		d.startStage()
	}
}

// pull is the YarnAllocator heartbeat with Spark's exponential backoff:
// the interval starts at 200 ms and doubles (up to 3 s) while no new
// containers arrive. This backoff is why the centralized allocation delay
// for a multi-container batch lands in seconds (Fig 7a).
func (d *driver) pull() {
	if d.finished {
		d.pullActive = false
		return
	}
	grants := d.app.rm.Pull(d.app.ID)
	for _, al := range grants {
		d.onGrant(al)
	}
	if d.allocated >= d.app.cfg.overRequestCount() {
		d.pullActive = false
		return // everything granted; allocator goes quiet
	}
	if len(grants) > 0 {
		d.pullEvery = d.app.cfg.InitialAllocIntervalMs
	} else {
		d.pullEvery *= 2
		if d.pullEvery > d.app.cfg.MaxAllocIntervalMs {
			d.pullEvery = d.app.cfg.MaxAllocIntervalMs
		}
	}
	d.schedulePull()
}

// onGrant starts an executor in the container, or — beyond the executor
// target, which only happens when over-requesting — parks it unused.
func (d *driver) onGrant(al *yarn.Allocation) {
	if d.finished {
		// Granted after the job ended or the AM died: hand it straight back.
		d.app.rm.ReleaseGrants(d.app.ID, []*yarn.Allocation{al})
		return
	}
	d.allocated++
	cfg := d.app.cfg
	if d.allocated >= cfg.Executors && !d.endAlloLogd {
		d.endAlloLogd = true
		// END_ALLO (Table I message 12).
		d.allocLog.Infof("SDCHECKER END_ALLO All %d requested containers allocated", cfg.Executors)
		d.env.Tracer().Record(sim.TraceSpan{
			Process: d.app.ID.String(), Thread: d.env.Alloc.Container.String(),
			Name: sim.SpanAllocation, Start: d.alloStartAt, End: d.env.Eng.Now(),
		})
	}
	if d.launched >= cfg.Executors {
		d.extras = append(d.extras, al) // the bug: allocated, never used
		return
	}
	d.launched++
	e := &executor{d: d, idx: d.launched, slots: cfg.ExecutorProfile.VCores}
	d.executors = append(d.executors, e)
	if d.execByCID != nil {
		d.execByCID[al.Container.String()] = e
	}
	al.Node.StartContainer(al, yarn.LaunchSpec{
		Resources: cfg.executorResources(),
		Instance:  yarn.InstSparkExecutor,
		Runtime:   cfg.Runtime,
		Process:   e,
	})
}

// startUserInit runs the rest of driver-side initialization after RM
// registration: session construction, then the user application's init —
// base planning CPU plus one HDFS read + broadcast creation per opened
// table, serial by default and parallel in "opt" mode (Fig 11b).
func (d *driver) startUserInit() {
	app := d.app.cfg.App
	session := app.SessionSetupCPUSec * d.env.Rng.Uniform(0.85, 1.3)
	base := app.InitBaseCPUSec * d.env.Rng.Uniform(0.8, 1.3)
	d.sessionPhase(session+base, app.SessionDiskMB, func() {
		tables := app.Tables
		if len(tables) == 0 {
			d.userInitDone()
			return
		}
		if d.app.cfg.ParallelInit {
			// "opt" mode (Fig 11b): table reads run in parallel (Scala
			// Futures), but broadcast creation still serializes on the
			// SparkContext lock — which is why the paper measured only a
			// ~2 s tail reduction, not an 8x one.
			remaining := len(tables)
			var cpuQueue []func()
			var cpuBusy bool
			var runNext func()
			runNext = func() {
				if len(cpuQueue) == 0 {
					cpuBusy = false
					return
				}
				cpuBusy = true
				job := cpuQueue[0]
				cpuQueue = cpuQueue[1:]
				job()
			}
			for i := range tables {
				t := tables[i]
				d.readTable(t, func() {
					// Deserialization/stats parallelize; the broadcast
					// registration does not.
					cpu := d.app.cfg.App.PerTableCPUSec * d.env.Rng.Uniform(0.7, 1.5)
					d.env.Node.Compute(cpu*0.55, 1, func(sim.Time) {
						cpuQueue = append(cpuQueue, func() {
							d.env.Node.Compute(cpu*0.45, 1, func(sim.Time) {
								d.ctxLog.Infof("Created broadcast for table %s", t.Path)
								remaining--
								if remaining == 0 {
									d.userInitDone()
								}
								runNext()
							})
						})
						if !cpuBusy {
							runNext()
						}
					})
				})
			}
			return
		}
		var next func(i int)
		next = func(i int) {
			if i >= len(tables) {
				d.userInitDone()
				return
			}
			d.initTable(tables[i], func() { next(i + 1) })
		}
		next(0)
	})
}

// sessionPhase runs session-setup CPU and local-disk reads concurrently,
// calling done when both finish.
func (d *driver) sessionPhase(cpu, diskMB float64, done func()) {
	remaining := 1
	join := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	if diskMB > 0 {
		remaining++
		cluster.StartTransfer(d.env.Eng, []cluster.Leg{
			{Res: d.env.Node.Disk, Work: diskMB, Demand: 600},
		}, func(sim.Time) { join() })
	}
	d.env.Node.Compute(cpu, 1, func(sim.Time) { join() })
}

// initTable reads the table's footer/sample from HDFS and creates the
// broadcast variable (CPU) — both on the scheduling critical path.
func (d *driver) initTable(t TableRef, done func()) {
	d.readTable(t, func() { d.broadcastTable(t, done) })
}

// readTable performs the driver-side footer + sample read for one table.
func (d *driver) readTable(t TableRef, done func()) {
	app := d.app.cfg.App
	f := d.app.fs.Lookup(t.Path)
	if f == nil {
		f = d.app.fs.Create(t.Path, t.SizeMB, nil)
	}
	readMB := app.TableFooterMB + app.TableSampleFrac*t.SizeMB
	if cap := app.TableFooterMB + app.TableSampleCapMB; app.TableSampleCapMB > 0 && readMB > cap {
		readMB = cap
	}
	if readMB > t.SizeMB {
		readMB = t.SizeMB
	}
	d.app.fs.ReadData(d.env.Node, f, readMB, func(sim.Time) { done() })
}

// broadcastTable creates the broadcast variable for one table (CPU).
func (d *driver) broadcastTable(t TableRef, done func()) {
	cpu := d.app.cfg.App.PerTableCPUSec * d.env.Rng.Uniform(0.7, 1.5)
	d.env.Node.Compute(cpu, 1, func(sim.Time) {
		d.ctxLog.Infof("Created broadcast for table %s", t.Path)
		done()
	})
}

func (d *driver) userInitDone() {
	d.initDone = true
	d.ctxLog.Infof("User application initialized: %s", d.app.cfg.App.Name)
	d.maybeStart()
}

// executorRegistered is the executor's registration RPC.
func (d *driver) executorRegistered(e *executor) {
	if d.finished {
		return
	}
	e.registeredAt = d.env.Eng.Now()
	d.registered++
	if d.started {
		d.fillExecutor(e)
		return
	}
	d.maybeStart()
}

// maybeStart opens the task-scheduling gate once user init is done and
// enough executors registered (or the registration wait timed out).
func (d *driver) maybeStart() {
	if d.started || d.finished || !d.initDone || d.registered == 0 {
		return
	}
	if d.registered < d.app.cfg.gateTarget() && d.gateTimer != nil {
		return
	}
	d.started = true
	if d.gateTimer != nil {
		d.env.Eng.Cancel(d.gateTimer)
		d.gateTimer = nil
	}
	// DAGScheduler job submission cost before the first tasks ship.
	d.env.Node.Compute(0.08, 1, func(sim.Time) { d.startStage() })
}

func (d *driver) startStage() {
	if d.finished {
		return
	}
	app := d.app.cfg.App
	if d.stage >= len(app.Stages) {
		d.finishJob()
		return
	}
	st := app.Stages[d.stage]
	if st.Tasks <= 0 {
		d.stage++
		d.startStage()
		return
	}
	d.nextTask = 0
	d.outstanding = 0
	// Distribute the first wave round-robin across registered executors,
	// as Spark's TaskSchedulerImpl does, rather than filling one executor
	// at a time.
	assignedAny := true
	for assignedAny {
		assignedAny = false
		for _, e := range d.executors {
			if d.nextTask >= st.Tasks {
				return
			}
			if !e.registered() || e.stopped || e.free() <= 0 {
				continue
			}
			d.dispatchOne(e, &app.Stages[d.stage])
			assignedAny = true
		}
	}
}

// dispatchOne sends the next task to e: reclaimed tasks from dead
// executors first, then fresh tasks of the current stage.
func (d *driver) dispatchOne(e *executor, st *StageProfile) {
	var tid int
	if len(d.retry) > 0 {
		tid = d.retry[0]
		d.retry = d.retry[1:]
	} else {
		tid = d.taskID(d.nextTask)
		d.nextTask++
	}
	d.outstanding++
	e.runTask(tid, st, func() { d.taskDone(e) })
}

// fillExecutor dispatches tasks onto the executor's free slots.
func (d *driver) fillExecutor(e *executor) {
	if !d.started || d.finished || d.stage >= len(d.app.cfg.App.Stages) {
		return
	}
	st := &d.app.cfg.App.Stages[d.stage]
	for e.registered() && !e.stopped && e.free() > 0 && (len(d.retry) > 0 || d.nextTask < st.Tasks) {
		d.dispatchOne(e, st)
	}
}

func (d *driver) taskID(n int) int {
	// Monotonic task IDs across stages, like Spark's TID counter.
	base := 0
	for i := 0; i < d.stage; i++ {
		base += d.app.cfg.App.Stages[i].Tasks
	}
	return base + n
}

func (d *driver) taskDone(e *executor) {
	if d.finished {
		return
	}
	d.outstanding--
	st := &d.app.cfg.App.Stages[d.stage]
	if len(d.retry) > 0 || d.nextTask < st.Tasks {
		d.fillExecutor(e)
		return
	}
	if d.outstanding == 0 {
		d.stage++
		d.startStage()
	}
}

// finishJob stops executors, releases never-used containers, unregisters,
// and exits the driver container.
func (d *driver) finishJob() {
	if d.finished {
		return
	}
	d.finished = true
	d.ctxLog.Infof("Job finished, stopping SparkContext")
	for _, e := range d.executors {
		e.stop()
	}
	if len(d.extras) > 0 {
		d.allocLog.Infof("Releasing %d unused containers", len(d.extras))
		d.app.rm.ReleaseGrants(d.app.ID, d.extras)
		d.extras = nil
	}
	d.app.rm.FinishApp(d.app.ID)
	if d.app.OnFinished != nil {
		d.app.OnFinished(d.env.Eng.Now())
	}
	d.env.Exit()
}

// String aids debugging.
func (d *driver) String() string {
	return fmt.Sprintf("spark-driver(%s alloc=%d reg=%d stage=%d)", d.app.ID, d.allocated, d.registered, d.stage)
}
