package spark_test

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

func miniProfile(tables int) spark.AppProfile {
	p := spark.AppProfile{
		Name:               "mini",
		SessionSetupCPUSec: 0.4,
		InitBaseCPUSec:     0.2,
		PerTableCPUSec:     0.2,
		TableFooterMB:      4,
		TableSampleFrac:    0.001,
		TableSampleCapMB:   16,
		Stages: []spark.StageProfile{
			{Name: "s1", Tasks: 8, TaskCPUSec: 0.3, TaskInputMB: 16, InputPath: "/tpch/t0"},
			{Name: "s2", Tasks: 4, TaskCPUSec: 0.2},
		},
	}
	for i := 0; i < tables; i++ {
		p.Tables = append(p.Tables, spark.TableRef{Path: "/tpch/t" + string(rune('0'+i)), SizeMB: 256})
	}
	return p
}

func bed(t *testing.T, mutate func(*yarn.Config)) *testkit.Bed {
	t.Helper()
	b := testkit.New(testkit.Options{Workers: 4, Yarn: mutate})
	b.Prewarm(map[string]float64{spark.BasePackagePath: spark.BasePackageMB})
	for i := 0; i < 4; i++ {
		path := "/tpch/t" + string(rune('0'+i))
		if b.FS.Lookup(path) == nil {
			b.FS.Create(path, 256, nil)
		}
	}
	return b
}

func runApp(t *testing.T, b *testkit.Bed, cfg spark.Config) *spark.App {
	t.Helper()
	app := spark.Submit(b.RM, b.FS, cfg)
	b.Run(3600)
	if !app.Finished() {
		t.Fatal("app did not finish")
	}
	return app
}

func TestAppCompletesAndEmitsAllMarkers(t *testing.T) {
	b := bed(t, nil)
	cfg := spark.DefaultConfig(miniProfile(2))
	app := runApp(t, b, cfg)

	amCID := ids.ContainerID{App: app.ID, Attempt: 1, Num: 1}
	amStderr := strings.Join(b.Lines(yarn.StderrPath(amCID)), "\n")
	for _, want := range []string{
		"Registered with ResourceManager",
		"SDCHECKER START_ALLO Requesting 4 executor containers",
		"SDCHECKER END_ALLO All 4 requested containers allocated",
	} {
		if !strings.Contains(amStderr, want) {
			t.Errorf("driver stderr missing %q", want)
		}
	}
	// Executors: exactly 4 launched, each with one FIRST_TASK marker.
	gotFirstTask := 0
	for _, f := range b.Sink.Files() {
		if !strings.Contains(f, "stderr") || strings.HasSuffix(f, "000001/stderr") {
			continue
		}
		text := strings.Join(b.Lines(f), "\n")
		if strings.Contains(text, "Got assigned task") {
			gotFirstTask++
		}
	}
	if gotFirstTask != 4 {
		t.Fatalf("%d executors logged FIRST_TASK, want 4", gotFirstTask)
	}
}

func TestGateWaitsForRegistrationRatio(t *testing.T) {
	// With ratio 1.0 the first task must come after ALL executors
	// registered; with a tiny ratio it can start after the first.
	delays := map[float64]sim.Time{}
	for _, ratio := range []float64{0.25, 1.0} {
		b := bed(t, nil)
		cfg := spark.DefaultConfig(miniProfile(1))
		cfg.MinRegisteredRatio = ratio
		app := spark.Submit(b.RM, b.FS, cfg)
		b.Run(3600)
		if !app.Finished() {
			t.Fatal("app did not finish")
		}
		delays[ratio] = b.Eng.Now()
	}
	_ = delays // completion order asserted by the decomposition test below
}

func TestOverRequestKeepsExtrasUnused(t *testing.T) {
	b := bed(t, func(c *yarn.Config) { c.Scheduler = yarn.SchedOpportunistic })
	cfg := spark.DefaultConfig(miniProfile(1))
	cfg.Opportunistic = true
	cfg.OverRequestFactor = 1.5 // ceil(1.5*4) = 6 containers, 4 executors
	runApp(t, b, cfg)
	rmLog := strings.Join(b.Lines(yarn.RMLogFile), "\n")
	if got := strings.Count(rmLog, "from ACQUIRED to RELEASED"); got != 2 {
		t.Fatalf("released %d unused containers, want 2", got)
	}
}

func TestParallelInitFasterThanSerial(t *testing.T) {
	run := func(parallel bool) sim.Time {
		// No delay scheduling: executor start must not mask the init path.
		b := bed(t, func(c *yarn.Config) { c.LocalityDelayMaxBeats = 0 })
		p := miniProfile(4)
		p.PerTableCPUSec = 1.2 // heavy enough that init is on the critical path
		cfg := spark.DefaultConfig(p)
		cfg.ParallelInit = parallel
		app := spark.Submit(b.RM, b.FS, cfg)
		var finished sim.Time
		app.OnFinished = func(at sim.Time) { finished = at }
		b.Run(3600)
		if !app.Finished() {
			t.Fatal("app did not finish")
		}
		return finished
	}
	serial := run(false)
	par := run(true)
	if par >= serial {
		t.Fatalf("parallel init (%dms) not faster than serial (%dms)", par, serial)
	}
}

func TestExecutorCountRespected(t *testing.T) {
	b := bed(t, nil)
	cfg := spark.DefaultConfig(miniProfile(1))
	cfg.Executors = 2
	runApp(t, b, cfg)
	rmLog := strings.Join(b.Lines(yarn.RMLogFile), "\n")
	// AM + 2 executors = 3 allocations.
	if got := strings.Count(rmLog, "from NEW to ALLOCATED"); got != 3 {
		t.Fatalf("allocated %d containers, want 3", got)
	}
}

func TestZeroExecutorsPanics(t *testing.T) {
	b := bed(t, nil)
	cfg := spark.DefaultConfig(miniProfile(1))
	cfg.Executors = 0
	defer func() {
		if recover() == nil {
			t.Error("zero executors did not panic")
		}
	}()
	spark.Submit(b.RM, b.FS, cfg)
}

func TestOnFinishedCallback(t *testing.T) {
	b := bed(t, nil)
	cfg := spark.DefaultConfig(miniProfile(1))
	app := spark.Submit(b.RM, b.FS, cfg)
	var at sim.Time
	app.OnFinished = func(t sim.Time) { at = t }
	b.Run(3600)
	if at == 0 {
		t.Fatal("OnFinished never fired")
	}
}

func TestJVMReuseShortensSchedule(t *testing.T) {
	run := func(reuse bool) sim.Time {
		b := bed(t, func(c *yarn.Config) { c.JVMReuse = reuse })
		cfg := spark.DefaultConfig(miniProfile(1))
		app := spark.Submit(b.RM, b.FS, cfg)
		var finished sim.Time
		app.OnFinished = func(at sim.Time) { finished = at }
		b.Run(3600)
		if !app.Finished() {
			t.Fatal("app did not finish")
		}
		return finished
	}
	cold := run(false)
	warm := run(true)
	if warm+500 >= cold {
		t.Fatalf("JVM reuse finish %dms not clearly faster than cold %dms", warm, cold)
	}
}

func TestStreamingScanStageCompletes(t *testing.T) {
	b := bed(t, nil)
	p := miniProfile(1)
	p.Stages = []spark.StageProfile{
		{Name: "scan", Tasks: 6, TaskCPUSec: 0.5, TaskInputMB: 32, InputPath: "/tpch/t0", TaskIODemandMBps: 30},
	}
	cfg := spark.DefaultConfig(p)
	runApp(t, b, cfg)
}

func TestGateTimeoutProceedsWithFewerExecutors(t *testing.T) {
	// Ask for more executors than the cluster can ever grant under vcores
	// accounting; after RegisteredWaitMaxMs the driver must start anyway.
	b := bed(t, func(c *yarn.Config) {
		c.UseVCoresAccounting = true
		c.LocalityDelayMaxBeats = 0
	})
	p := miniProfile(1)
	cfg := spark.DefaultConfig(p)
	cfg.Executors = 40 // 4 nodes x 32 vcores can't hold 40 x 8-vcore executors
	cfg.RegisteredWaitMaxMs = 8000
	var finished sim.Time
	app := spark.Submit(b.RM, b.FS, cfg)
	app.OnFinished = func(at sim.Time) { finished = at }
	b.Run(3600)
	if !app.Finished() {
		t.Fatal("app never started despite the gate timeout")
	}
	if finished == 0 || finished > 120_000 {
		t.Fatalf("finish at %dms — timeout fallback too slow", finished)
	}
}

func TestAllocatorBackoffDoubles(t *testing.T) {
	// With an empty queue backlog the first pull lands at the initial
	// interval; starve the allocator (vcores accounting, full cluster)
	// and the pull gaps must grow toward MaxAllocIntervalMs.
	b := bed(t, func(c *yarn.Config) {
		c.UseVCoresAccounting = true
		c.LocalityDelayMaxBeats = 0
	})
	// Fill the cluster with a long-running hog first: it asks for more
	// executors than fit, so it permanently owns all schedulable vcores.
	hog := spark.DefaultConfig(miniProfile(1))
	hog.Executors = 16 // 16 x 8 = 128 vcores: can never fully fit with the AMs
	hog.App.Stages = []spark.StageProfile{{Name: "hold", Tasks: 120, TaskCPUSec: 2000}}
	spark.Submit(b.RM, b.FS, hog)
	b.Run(60) // let the hog take everything first

	late := spark.DefaultConfig(miniProfile(1))
	late.Executors = 4
	app := spark.Submit(b.RM, b.FS, late)
	b.Run(340)
	// The late app cannot get its executors while the hog holds the
	// cluster; its allocator must still be alive (no panic, no busy loop)
	// and END_ALLO must not have been logged.
	amCID := ids.ContainerID{App: app.ID, Attempt: 1, Num: 1}
	stderr := strings.Join(b.Lines(yarn.StderrPath(amCID)), "\n")
	if strings.Contains(stderr, "END_ALLO") {
		t.Fatal("END_ALLO logged while the cluster is full")
	}
	if !strings.Contains(stderr, "START_ALLO") {
		t.Fatal("allocator never started")
	}
}
