// Package spark models Spark-on-YARN applications (cluster deploy mode)
// at the granularity the paper measures: the driver is the
// ApplicationMaster, executors are YARN containers, and every event the
// paper mines from Spark logs — driver first log, registration with the
// ResourceManager, the manually-added START_ALLO/END_ALLO allocation
// markers, executor first log, and first task assignment — is emitted in
// realistic log4j form.
//
// The latency structure follows §II and §IV of the paper:
//
//   - Driver delay: JVM warm-up plus SparkContext initialization between
//     the driver's first log line and its RM registration (~3 s, Fig 11a).
//   - Allocation delay: the YarnAllocator heartbeat starts at 200 ms and
//     doubles up to 3 s while requests are pending (Spark's
//     initial-allocation interval), which is why a centralized 4-container
//     batch takes seconds while the distributed scheduler's direct RPC
//     takes tens of milliseconds (Fig 7a).
//   - Executor delay: executor registration, user application
//     initialization (one RDD + broadcast per opened table, serial unless
//     the "opt" parallel mode is on — Fig 11b), and the
//     minRegisteredResourcesRatio=0.8 gate before task scheduling.
//   - The over-allocation bug (SPARK-21562): in opportunistic mode the
//     allocator requests more containers than it starts executors in.
package spark

import (
	"math"

	"repro/internal/docker"
	"repro/internal/jvm"
	"repro/internal/yarn"
)

// Spark logging class names used in container stderr files.
const (
	ClassAppMaster     = "org.apache.spark.deploy.yarn.ApplicationMaster"
	ClassYarnAllocator = "org.apache.spark.deploy.yarn.YarnAllocator"
	ClassSparkContext  = "org.apache.spark.SparkContext"
	ClassExecBackend   = "org.apache.spark.executor.CoarseGrainedExecutorBackend"
	ClassExecutor      = "org.apache.spark.executor.Executor"
)

// BasePackagePath is the HDFS path of the framework package every
// container localizes (Spark jars + TPC-H jar + configs; ~500 MB, §IV-C).
const BasePackagePath = "/spark/spark-archive.zip"

// BasePackageMB is its size.
const BasePackageMB = 500

// TableRef is one input table the user code opens during initialization.
type TableRef struct {
	Path   string
	SizeMB float64
}

// StageProfile describes one stage of the job body.
type StageProfile struct {
	Name          string
	Tasks         int
	TaskCPUSec    float64 // vcore-seconds of CPU per task
	TaskInputMB   float64 // HDFS bytes read per task
	InputPath     string  // table to read from ("" = remote anonymous read)
	TaskCPUVcores float64 // CPU demand per task (default 1)
	// TaskIODemandMBps > 0 makes the task stream its input concurrently
	// with compute at this steady rate (a scan pipeline), instead of a
	// burst read followed by CPU. Streaming tasks hold their disk/NIC
	// share for their whole lifetime, which is what lets many concurrent
	// scans saturate the cluster's disks (Fig 5's 200 GB case).
	TaskIODemandMBps float64
}

// AppProfile is the user-code shape of an application. Builders for the
// paper's workloads (TPC-H on Spark-SQL, Spark wordcount, Kmeans) live in
// internal/workload.
type AppProfile struct {
	Name string
	// Tables opened during user init: each costs a driver-side HDFS read
	// (footer + sample) and a broadcast-variable creation (CPU), on the
	// scheduling critical path (§IV-D).
	Tables []TableRef
	// SessionSetupCPUSec is the driver-side framework work that runs
	// after RM registration but before user code (SparkSession and
	// SQL/Hive session state construction, BlockManager, UI). It sits in
	// the executor-delay window of Fig 10.
	SessionSetupCPUSec float64
	// SessionDiskMB is read from the driver's local disk during session
	// setup (configs, jars, metastore) concurrently with the CPU work —
	// an IO-interference-sensitive slice of the in-application delay.
	SessionDiskMB float64
	// InitBaseCPUSec is driver CPU for query planning / session setup.
	InitBaseCPUSec float64
	// PerTableCPUSec is the broadcast-creation CPU cost per table.
	PerTableCPUSec float64
	// TableFooterMB + TableSampleFrac*size is read per table at init,
	// bounded by TableSampleCapMB (schema inference samples rows, it does
	// not scan the table).
	TableFooterMB    float64
	TableSampleFrac  float64
	TableSampleCapMB float64
	// Stages of the job body, run with a barrier between stages.
	Stages []StageProfile
}

// Config tunes one Spark submission.
type Config struct {
	Executors       int
	ExecutorProfile yarn.Profile
	// MinRegisteredRatio gates task scheduling on executor registration
	// (spark.scheduler.minRegisteredResourcesRatio, default 0.8).
	MinRegisteredRatio float64
	// RegisteredWaitMaxMs is the gate's timeout fallback (default 30 s).
	RegisteredWaitMaxMs int64
	// InitialAllocIntervalMs / MaxAllocIntervalMs shape the YarnAllocator
	// heartbeat backoff (defaults 200 ms -> 3000 ms).
	InitialAllocIntervalMs int64
	MaxAllocIntervalMs     int64
	// Runtime selects the container runtime for driver and executors.
	Runtime docker.Runtime
	// ExtraFiles are user --files shipped to executors (private, cold).
	ExtraFiles []yarn.LocalResource
	// Opportunistic routes executor requests through the distributed
	// scheduler.
	Opportunistic bool
	// OverRequestFactor > 1 reproduces SPARK-21562 in opportunistic mode:
	// the allocator asks for ceil(factor*N) containers but only ever
	// starts N executors.
	OverRequestFactor float64
	// ParallelInit enables the paper's "opt" optimization: table RDD and
	// broadcast initialization with Scala Futures instead of serially.
	ParallelInit bool
	// Queue names the Capacity Scheduler leaf queue ("" = default).
	Queue string
	// DriverJVM / ExecutorJVM cost models.
	DriverJVM   jvm.Model
	ExecutorJVM jvm.Model

	App AppProfile
}

// DefaultConfig mirrors the paper's Spark-SQL setup: four executors of
// 8 vcores / 4 GB each.
func DefaultConfig(app AppProfile) Config {
	driver := jvm.Spark()
	driver.WarmupVcoreSec = 2.1 // the driver JVM loads far more classes
	return Config{
		Executors:              4,
		ExecutorProfile:        yarn.Profile{VCores: 8, MemoryMB: 4096},
		MinRegisteredRatio:     0.8,
		RegisteredWaitMaxMs:    30000,
		InitialAllocIntervalMs: 200,
		MaxAllocIntervalMs:     3000,
		Runtime:                docker.RuntimeDefault,
		OverRequestFactor:      1.0,
		DriverJVM:              driver,
		ExecutorJVM:            jvm.Spark(),
		App:                    app,
	}
}

// gateTarget returns the executor-registration count that opens the task
// scheduling gate.
func (c Config) gateTarget() int {
	n := int(math.Ceil(c.MinRegisteredRatio * float64(c.Executors)))
	if n < 1 {
		n = 1
	}
	if n > c.Executors {
		n = c.Executors
	}
	return n
}

// overRequestCount returns how many containers the allocator asks for.
func (c Config) overRequestCount() int {
	if !c.Opportunistic || c.OverRequestFactor <= 1 {
		return c.Executors
	}
	return int(math.Ceil(c.OverRequestFactor * float64(c.Executors)))
}

// executorResources builds the executor container's localization list:
// the public base package plus the user's private extra files.
func (c Config) executorResources() []yarn.LocalResource {
	res := []yarn.LocalResource{{Path: BasePackagePath, SizeMB: BasePackageMB, Public: true}}
	res = append(res, c.ExtraFiles...)
	return res
}

// driverResources builds the driver container's localization list: only
// the base package — user --files are not localized for the AM, which is
// why Fig 8 shows sub-second localization points even with 8 GB files.
func (c Config) driverResources() []yarn.LocalResource {
	return []yarn.LocalResource{{Path: BasePackagePath, SizeMB: BasePackageMB, Public: true}}
}
