package cluster

import (
	"testing"

	"repro/internal/sim"
)

func mini(workers int) (*sim.Engine, *Cluster) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Node.DiskSeekPenalty = 0 // most tests want linear sharing
	return eng, New(eng, cfg)
}

func TestDefaultConfigMirrorsPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers != 25 {
		t.Fatalf("workers=%d, want 25 (the paper's working nodes)", cfg.Workers)
	}
	if cfg.Node.VCores != 32 || cfg.Node.MemoryMB != 132*1024 {
		t.Fatalf("node shape %d vcores / %d MB", cfg.Node.VCores, cfg.Node.MemoryMB)
	}
}

func TestNodeNaming(t *testing.T) {
	_, cl := mini(3)
	if cl.Node(0).Name != "node01" || cl.Node(2).Name != "node03" {
		t.Fatalf("names %s..%s", cl.Node(0).Name, cl.Node(2).Name)
	}
	if cl.ByName("node02") != cl.Node(1) {
		t.Fatal("ByName lookup broken")
	}
	if cl.ByName("nope") != nil {
		t.Fatal("ByName for unknown should be nil")
	}
}

func TestNodeIndexPanics(t *testing.T) {
	_, cl := mini(2)
	defer func() {
		if recover() == nil {
			t.Error("bad index did not panic")
		}
	}()
	cl.Node(5)
}

func TestComputeDuration(t *testing.T) {
	eng, cl := mini(1)
	var done sim.Time
	// 4 vcore-seconds at 2 vcores on an idle node: 2 seconds.
	cl.Node(0).Compute(4, 2, func(at sim.Time) { done = at })
	eng.Run()
	if done != 2000 {
		t.Fatalf("compute finished at %dms, want 2000", done)
	}
}

func TestComputeContention(t *testing.T) {
	eng, cl := mini(1)
	n := cl.Node(0)
	var done sim.Time
	// Saturate the 32-core node with background demand 64.
	n.Compute(1e9, 64, func(sim.Time) {})
	n.Compute(4, 2, func(at sim.Time) { done = at })
	eng.RunUntil(1_000_000)
	// Foreground gets 2 * 32/66 of a core-equivalent ≈ 0.97 vcores:
	// roughly 4.1 s instead of 2 s.
	if done < 3000 || done > 6000 {
		t.Fatalf("contended compute finished at %dms, want 3-6 s", done)
	}
}

func TestTransferWaitsForSlowestLeg(t *testing.T) {
	eng, cl := mini(2)
	var done sim.Time
	legs := []Leg{
		{Res: cl.Node(0).Disk, Work: 80, Demand: 800},   // 100 ms
		{Res: cl.Node(1).Net, Work: 1250, Demand: 1250}, // 1000 ms
	}
	StartTransfer(eng, legs, func(at sim.Time) { done = at })
	eng.Run()
	if done != 1000 {
		t.Fatalf("transfer finished at %dms, want 1000 (slowest leg)", done)
	}
}

func TestTransferSkipsZeroWorkLegs(t *testing.T) {
	eng, cl := mini(1)
	var done bool
	StartTransfer(eng, []Leg{{Res: cl.Node(0).Disk, Work: 0, Demand: 10}}, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("empty transfer never completed")
	}
}

func TestTransferCompletionIsAsync(t *testing.T) {
	eng, cl := mini(1)
	sync := true
	StartTransfer(eng, nil, func(sim.Time) { sync = false })
	if !sync {
		t.Fatal("transfer completed synchronously inside StartTransfer")
	}
	_ = cl
	eng.Run()
	if sync {
		t.Fatal("transfer never completed")
	}
}

func TestTransferCancel(t *testing.T) {
	eng, cl := mini(1)
	fired := false
	tr := StartTransfer(eng, []Leg{{Res: cl.Node(0).Disk, Work: 1e6, Demand: 100}}, func(sim.Time) { fired = true })
	eng.At(10, func() { tr.Cancel() })
	eng.Run()
	if fired {
		t.Fatal("cancelled transfer completed")
	}
	if cl.Node(0).Disk.Active() != 0 {
		t.Fatal("cancelled transfer left the disk busy")
	}
	tr.Cancel() // idempotent
}

func TestSeekDegradationWiredToDisk(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Node.DiskSeekPenalty = 1.0
	cfg.Node.DiskSeekFloor = 0.5
	cl := New(eng, cfg)
	d := cl.Node(0).Disk
	var t1 sim.Time
	d.Start(80, 10000, func(at sim.Time) { t1 = at })
	d.Start(80, 10000, func(sim.Time) {})
	eng.Run()
	// Two streams degrade aggregate to 50%: 400 MB/s total, 200 each:
	// 80 MB -> 400 ms (vs 100 ms two-way-split undegraded would be 200).
	if t1 < 390 || t1 > 410 {
		t.Fatalf("degraded read finished at %dms, want ~400", t1)
	}
}

func TestSeededDeterminism(t *testing.T) {
	_, c1 := mini(2)
	_, c2 := mini(2)
	if c1.Node(0).Rng.Uint64() != c2.Node(0).Rng.Uint64() {
		t.Fatal("same cluster seed produced different node rng streams")
	}
}

func TestZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero workers did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}
