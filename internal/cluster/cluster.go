// Package cluster models the physical testbed of the paper: 26 nodes, each
// with two 8-core hyper-threaded Xeons (32 vcores), 132 GB RAM, a RAID-5
// array of five hard drives, and a 10 Gbps NIC. One node hosts the
// ResourceManager and HDFS NameNode; the remaining 25 are workers, matching
// the paper's "25 working nodes".
//
// Performance-relevant hardware (CPU time, disk bandwidth, NIC bandwidth)
// is modeled with processor-sharing resources from internal/share, so that
// colocated work slows each other down the way the paper's interference
// experiments demonstrate. YARN-level accounting (allocatable vcores and
// memory) lives in internal/yarn; this package is only the iron.
package cluster

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/share"
	"repro/internal/sim"
)

// NodeConfig describes one machine's hardware.
type NodeConfig struct {
	VCores   int     // schedulable virtual cores (hyper-threads)
	MemoryMB int     // physical RAM for YARN accounting
	DiskMBps float64 // aggregate sequential disk bandwidth (RAID-5 + page cache)
	NetMBps  float64 // NIC bandwidth
	// DiskSeekPenalty / DiskSeekFloor shape the seek-degradation curve of
	// the rotational array: aggregate bandwidth scales by
	// 1/(1+penalty*(streams-1)), floored. Zero penalty disables it.
	DiskSeekPenalty float64
	DiskSeekFloor   float64
}

// Config describes the whole cluster.
type Config struct {
	Workers    int // number of worker nodes (paper: 25)
	Node       NodeConfig
	FabricMBps float64 // aggregate switching fabric bandwidth
	Seed       uint64
}

// DefaultConfig mirrors the paper's testbed (section IV-A).
func DefaultConfig() Config {
	return Config{
		Workers: 25,
		Node: NodeConfig{
			VCores:          32,
			MemoryMB:        132 * 1024,
			DiskMBps:        800,  // 5x1TB RAID-5 HDD plus page-cache effects
			NetMBps:         1250, // 10 Gbps
			DiskSeekPenalty: 0.05,
			DiskSeekFloor:   0.35,
		},
		FabricMBps: 12500, // 10:1 oversubscribed fabric for 25 nodes
		Seed:       1,
	}
}

// Node is one worker machine.
type Node struct {
	Index int    // 0-based
	Name  string // "node01" ... matches hostnames in log lines

	VCores   int
	MemoryMB int

	CPU  *share.Resource // capacity: vcores (vcore-seconds per second)
	Disk *share.Resource // capacity: MB/s
	Net  *share.Resource // capacity: MB/s

	Rng *rng.Source

	// down marks a machine that has crashed (power loss, kernel panic).
	// Layered services (the NodeManager, processes) check it to blackhole
	// work; the share.Resources keep draining whatever was in flight, since
	// their callbacks are guarded by the layers above.
	down bool
}

// Fail marks the machine as crashed. Idempotent.
func (n *Node) Fail() { n.down = true }

// Recover marks the machine as back up after a restart. Idempotent.
func (n *Node) Recover() { n.down = false }

// IsDown reports whether the machine is currently crashed.
func (n *Node) IsDown() bool { return n.down }

// Cluster is the set of worker nodes plus the shared fabric.
type Cluster struct {
	Eng    *sim.Engine
	Nodes  []*Node
	Fabric *share.Resource
	Rng    *rng.Source
	cfg    Config
}

// New builds a cluster on the given engine.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Workers <= 0 {
		panic("cluster: need at least one worker")
	}
	root := rng.New(cfg.Seed)
	c := &Cluster{
		Eng:    eng,
		Fabric: share.NewResource(eng, "fabric", cfg.FabricMBps),
		Rng:    root.Fork(0xfab),
		cfg:    cfg,
	}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("node%02d", i+1)
		n := &Node{
			Index:    i,
			Name:     name,
			VCores:   cfg.Node.VCores,
			MemoryMB: cfg.Node.MemoryMB,
			CPU:      share.NewResource(eng, name+"/cpu", float64(cfg.Node.VCores)),
			Disk:     share.NewResource(eng, name+"/disk", cfg.Node.DiskMBps),
			Net:      share.NewResource(eng, name+"/net", cfg.Node.NetMBps),
			Rng:      root.Fork(uint64(i) + 1),
		}
		if cfg.Node.DiskSeekPenalty > 0 {
			n.Disk.Degrade = share.NewSeekDegrade(cfg.Node.DiskSeekPenalty, cfg.Node.DiskSeekFloor)
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Config returns the configuration the cluster was built with.
func (c *Cluster) Config() Config { return c.cfg }

// Node returns the i-th worker (0-based). It panics on a bad index, which
// is always a harness bug.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.Nodes) {
		panic(fmt.Sprintf("cluster: node index %d out of range [0,%d)", i, len(c.Nodes)))
	}
	return c.Nodes[i]
}

// ByName returns the node with the given hostname, or nil.
func (c *Cluster) ByName(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Compute runs work vcore-seconds of CPU at a parallelism cap of vcores on
// the node, invoking done when it finishes. Under CPU contention the job
// slows proportionally — this is how Kmeans interference stretches JVM
// warm-up and driver initialization in Fig 13.
func (n *Node) Compute(work float64, vcores float64, done func(at sim.Time)) *share.Job {
	return n.CPU.Start(work, vcores, done)
}

// Transfer is a data movement that must complete on every leg (e.g. remote
// disk read + fabric + local NIC). It completes when the slowest leg
// drains; each leg contends with whatever else shares its resource.
type Transfer struct {
	pendingLegs int
	done        func(at sim.Time)
	jobs        []*share.Job
	cancelled   bool
}

// Leg describes one resource a transfer crosses.
type Leg struct {
	Res    *share.Resource
	Work   float64 // units to move across this resource (MB)
	Demand float64 // peak rate on this resource (MB/s)
}

// StartTransfer launches all legs concurrently and calls done when every
// leg has drained. A transfer with no legs completes immediately via the
// engine (never synchronously), preserving callback ordering discipline.
func StartTransfer(eng *sim.Engine, legs []Leg, done func(at sim.Time)) *Transfer {
	t := &Transfer{done: done}
	live := make([]Leg, 0, len(legs))
	for _, l := range legs {
		if l.Work > 0 {
			live = append(live, l)
		}
	}
	if len(live) == 0 {
		eng.After(0, func() {
			if !t.cancelled {
				done(eng.Now())
			}
		})
		return t
	}
	t.pendingLegs = len(live)
	for _, l := range live {
		job := l.Res.Start(l.Work, l.Demand, func(at sim.Time) {
			if t.cancelled {
				return
			}
			t.pendingLegs--
			if t.pendingLegs == 0 {
				t.done(at)
			}
		})
		t.jobs = append(t.jobs, job)
	}
	return t
}

// Cancel abandons the transfer; done will not fire.
func (t *Transfer) Cancel() {
	if t.cancelled {
		return
	}
	t.cancelled = true
	for _, j := range t.jobs {
		j.Resource().Cancel(j)
	}
	t.jobs = nil
}
