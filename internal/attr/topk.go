// Package attr provides the bounded heavy-hitter summaries behind the
// tail-attribution layer: space-saving top-k counters keyed by
// application or node, weighted by contributed delay. Like the digest
// sketches they sit next to, summaries are mergeable — a fleet of
// sharded ingesters can each keep its own and the aggregator combines
// them — and deterministic: contents are a function of the offered
// multiset, never of offer or merge order, as long as the number of
// distinct keys stays within capacity (the exact regime; see DESIGN.md
// for the bounded-error regime beyond it).
package attr

import "sort"

// DefaultTopK is the heavy-hitter capacity used across the repo: large
// enough that test and scenario workloads stay in the exact regime,
// small enough that a fleet-wide merge stays trivially cheap.
const DefaultTopK = 32

// Entry is one heavy hitter: a key (app ID or node name) with the total
// delay milliseconds attributed to it. Err is the maximum undercount
// introduced by space-saving evictions or merge truncation; it is 0 in
// the exact regime.
type Entry struct {
	Key   string  `json:"key"`
	SumMS float64 `json:"sum_ms"`
	ErrMS float64 `json:"err_ms,omitempty"`
}

// TopK is a space-saving (Metwally et al.) heavy-hitter summary over a
// weighted key stream. Not safe for concurrent use.
type TopK struct {
	cap int
	m   map[string]*Entry
}

// NewTopK returns an empty summary holding at most cap keys (cap <= 0
// uses DefaultTopK).
func NewTopK(cap int) *TopK {
	if cap <= 0 {
		cap = DefaultTopK
	}
	return &TopK{cap: cap, m: make(map[string]*Entry, cap)}
}

// Cap returns the summary's key capacity.
func (t *TopK) Cap() int { return t.cap }

// Len returns the number of keys currently tracked.
func (t *TopK) Len() int { return len(t.m) }

// Offer attributes amount (delay ms, clamped at 0) to key. While
// distinct keys fit within capacity this is an exact per-key sum; at
// capacity the minimum entry is evicted space-saving style — the new
// key inherits the evicted sum as its error bound — so the true top
// keys by weight are retained within a bounded undercount.
func (t *TopK) Offer(key string, amount float64) {
	if key == "" {
		return
	}
	if amount < 0 {
		amount = 0
	}
	if e := t.m[key]; e != nil {
		e.SumMS += amount
		return
	}
	if len(t.m) < t.cap {
		t.m[key] = &Entry{Key: key, SumMS: amount}
		return
	}
	// Evict the minimum under (SumMS asc, Key desc) — the mirror of the
	// reporting order, so eviction choice is deterministic too.
	var min *Entry
	for _, e := range t.m {
		if min == nil || e.SumMS < min.SumMS || (e.SumMS == min.SumMS && e.Key > min.Key) {
			min = e
		}
	}
	delete(t.m, min.Key)
	t.m[key] = &Entry{Key: key, SumMS: min.SumMS + amount, ErrMS: min.SumMS}
}

// Merge folds other into t: per-key sums and error bounds add, then the
// union is truncated back to capacity keeping the largest entries. The
// receiving capacity grows to the larger of the two. Below capacity the
// merge is exact and order-insensitive; beyond it, truncation keeps the
// deterministic top entries.
func (t *TopK) Merge(other *TopK) {
	if other == nil {
		return
	}
	if other.cap > t.cap {
		t.cap = other.cap
	}
	for k, oe := range other.m {
		if e := t.m[k]; e != nil {
			e.SumMS += oe.SumMS
			e.ErrMS += oe.ErrMS
		} else {
			t.m[k] = &Entry{Key: k, SumMS: oe.SumMS, ErrMS: oe.ErrMS}
		}
	}
	if len(t.m) > t.cap {
		es := t.Entries()
		for _, e := range es[t.cap:] {
			delete(t.m, e.Key)
		}
	}
}

// Clone returns an independent deep copy.
func (t *TopK) Clone() *TopK {
	c := NewTopK(t.cap)
	for k, e := range t.m {
		ce := *e
		c.m[k] = &ce
	}
	return c
}

// Entries returns the tracked keys sorted heaviest first (SumMS desc,
// Key asc on ties).
func (t *TopK) Entries() []Entry {
	out := make([]Entry, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SumMS != out[j].SumMS {
			return out[i].SumMS > out[j].SumMS
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns up to n heaviest entries.
func (t *TopK) Top(n int) []Entry {
	es := t.Entries()
	if n >= 0 && len(es) > n {
		es = es[:n]
	}
	return es
}
