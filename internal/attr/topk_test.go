package attr

import (
	"fmt"
	"reflect"
	"testing"
)

// TestTopKExactBelowCapacity: under capacity the summary is exact — every
// key's true contribution, zero error, sorted by contribution.
func TestTopKExactBelowCapacity(t *testing.T) {
	k := NewTopK(4)
	k.Offer("b", 10)
	k.Offer("a", 5)
	k.Offer("b", 7)
	k.Offer("c", 30)
	got := k.Entries()
	want := []Entry{{Key: "c", SumMS: 30}, {Key: "b", SumMS: 17}, {Key: "a", SumMS: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Entries() = %+v, want %+v", got, want)
	}
	for _, e := range got {
		if e.ErrMS != 0 {
			t.Errorf("exact regime has error bound %+v", e)
		}
	}
}

// TestTopKEviction: over capacity the space-saving rule applies — the
// minimum entry is evicted, the newcomer inherits its sum as both floor
// and error bound, and the structure never exceeds its capacity.
func TestTopKEviction(t *testing.T) {
	k := NewTopK(2)
	k.Offer("a", 100)
	k.Offer("b", 10)
	k.Offer("c", 5) // evicts b(10): c enters at 10+5 with err 10
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	got := k.Entries()
	want := []Entry{{Key: "a", SumMS: 100}, {Key: "c", SumMS: 15, ErrMS: 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Entries() = %+v, want %+v", got, want)
	}
}

// TestTopKOfferEdgeCases: empty keys are dropped, negative amounts clamp
// to zero (an app cannot remove delay mass).
func TestTopKOfferEdgeCases(t *testing.T) {
	k := NewTopK(4)
	k.Offer("", 50)
	if k.Len() != 0 {
		t.Fatal("empty key was admitted")
	}
	k.Offer("a", -5)
	if got := k.Entries(); len(got) != 1 || got[0].SumMS != 0 {
		t.Errorf("negative amount not clamped: %+v", got)
	}
}

// TestTopKMergeOrderInsensitive: in the exact regime (distinct keys ≤
// capacity) any partition of the offers into shards, merged in any
// order, yields identical entries — the worker-count invariant.
func TestTopKMergeOrderInsensitive(t *testing.T) {
	type offer struct {
		key string
		amt float64
	}
	var offers []offer
	seed := uint64(99)
	for i := 0; i < 100; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		offers = append(offers, offer{
			key: fmt.Sprintf("app_%02d", seed%20),
			amt: float64(seed % 10_000),
		})
	}
	ref := NewTopK(32)
	for _, o := range offers {
		ref.Offer(o.key, o.amt)
	}
	for _, parts := range []int{2, 3, 5} {
		shards := make([]*TopK, parts)
		for i := range shards {
			shards[i] = NewTopK(32)
		}
		for i, o := range offers {
			shards[i%parts].Offer(o.key, o.amt)
		}
		for _, reversed := range []bool{false, true} {
			m := NewTopK(32)
			for i := range shards {
				j := i
				if reversed {
					j = parts - 1 - i
				}
				m.Merge(shards[j].Clone())
			}
			if !reflect.DeepEqual(m.Entries(), ref.Entries()) {
				t.Errorf("parts=%d reversed=%v: merged entries diverge from serial\n got %+v\nwant %+v",
					parts, reversed, m.Entries(), ref.Entries())
			}
		}
	}
}

// TestTopKMergeBounded: merging two full summaries stays within the
// larger capacity and keeps the heaviest keys.
func TestTopKMergeBounded(t *testing.T) {
	a, b := NewTopK(2), NewTopK(2)
	a.Offer("x", 100)
	a.Offer("y", 50)
	b.Offer("z", 200)
	b.Offer("x", 30)
	a.Merge(b)
	if a.Len() > 2 {
		t.Fatalf("merge exceeded capacity: %d", a.Len())
	}
	got := a.Entries()
	want := []Entry{{Key: "z", SumMS: 200}, {Key: "x", SumMS: 130}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Entries() = %+v, want %+v", got, want)
	}
}

// TestTopKCloneIndependent: mutating a clone must not leak back.
func TestTopKCloneIndependent(t *testing.T) {
	a := NewTopK(4)
	a.Offer("x", 10)
	c := a.Clone()
	c.Offer("x", 90)
	if got := a.Entries()[0].SumMS; got != 10 {
		t.Errorf("clone mutation leaked into original: %v", got)
	}
}

// TestTopKTop truncates without mutating.
func TestTopKTop(t *testing.T) {
	k := NewTopK(8)
	for i, key := range []string{"a", "b", "c", "d"} {
		k.Offer(key, float64(10*(i+1)))
	}
	top := k.Top(2)
	want := []Entry{{Key: "d", SumMS: 40}, {Key: "c", SumMS: 30}}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("Top(2) = %+v, want %+v", top, want)
	}
	if k.Len() != 4 {
		t.Errorf("Top mutated the summary: %d", k.Len())
	}
}

// TestTopKDefaultCap: non-positive capacities fall back to DefaultTopK.
func TestTopKDefaultCap(t *testing.T) {
	if got := NewTopK(0).Cap(); got != DefaultTopK {
		t.Errorf("NewTopK(0).Cap() = %d, want %d", got, DefaultTopK)
	}
}
