package slo

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func mustRule(t *testing.T, s string) Rule {
	t.Helper()
	r, err := ParseRule(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseRule(t *testing.T) {
	r := mustRule(t, "alloc-p99: p99(alloc) < 500ms over 5m")
	if r.Name != "alloc-p99" || r.Component != "alloc" || r.Quantile != 0.99 ||
		r.Op != '<' || r.ThresholdMS != 500 || r.WindowMS != 5*60*1000 ||
		r.BurnMS != 0 || r.MinCount != 1 {
		t.Fatalf("parsed %+v", r)
	}

	r = mustRule(t, "prod: p95(total, queue=prod, node=node07) > 2s over 10m burn 1m min 3")
	if r.Queue != "prod" || r.Node != "node07" || r.Quantile != 0.95 ||
		r.Op != '>' || r.ThresholdMS != 2000 || r.BurnMS != 60*1000 || r.MinCount != 3 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParseRuleRejects(t *testing.T) {
	for _, s := range []string{
		"",                                       // empty
		"x: p99(alloc) < 500ms",                  // missing window
		"x: p99(bogus) < 500ms over 5m",          // unknown component
		"x: p0(alloc) < 500ms over 5m",           // quantile at 0
		"x: p100(alloc) < 500ms over 5m",         // quantile at 100
		"x: p99(alloc) < -5ms over 5m",           // negative threshold
		"x: p99(alloc) < 500ms over 5m burn 10m", // burn >= window
		"x: p99(alloc, shard=3) < 500ms over 5m", // unknown selector
		"x: p99(alloc) < 500ms over 5m min 0",    // zero min
		"x p99(alloc) < 500ms over 5m",           // missing colon
	} {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) accepted", s)
		}
	}
}

func TestRuleStringRoundtrip(t *testing.T) {
	for _, s := range []string{
		"alloc-p99: p99(alloc) < 500ms over 5m",
		"prod: p95(total, queue=prod) < 30s over 10m burn 2m",
		"n7: p50(localization, node=node07) > 1s over 2m min 5",
		"fine: p99.9(queueing) < 250ms over 1h",
	} {
		r := mustRule(t, s)
		r2 := mustRule(t, r.String())
		if r != r2 {
			t.Errorf("roundtrip %q -> %q: %+v != %+v", s, r.String(), r, r2)
		}
	}
}

func TestParseRulesFile(t *testing.T) {
	src := `
# delay objectives
alloc-p99: p99(alloc) < 500ms over 5m
total-p95: p95(total) < 30s over 10m burn 2m  # inline comment

`
	rules, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "alloc-p99" || rules[1].BurnMS != 2*60*1000 {
		t.Fatalf("rules %+v", rules)
	}

	if _, err := ParseRules(strings.NewReader("a: p99(alloc) < 1s over 5m\na: p99(total) < 1s over 5m")); err == nil {
		t.Fatal("duplicate rule names accepted")
	}
	if _, err := ParseRules(strings.NewReader("garbage")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestRuleMatches(t *testing.T) {
	r := mustRule(t, "x: p99(alloc, queue=prod) < 1s over 5m")
	if !r.Matches(core.Observation{Component: "alloc", Queue: "prod"}) {
		t.Error("should match its queue")
	}
	if r.Matches(core.Observation{Component: "alloc", Queue: "batch"}) {
		t.Error("matched the wrong queue")
	}
	if r.Matches(core.Observation{Component: "total", Queue: "prod"}) {
		t.Error("matched the wrong component")
	}
	any := mustRule(t, "y: p99(alloc) < 1s over 5m")
	if !any.Matches(core.Observation{Component: "alloc", Queue: "batch", Node: "n1"}) {
		t.Error("selector-free rule should match any queue/node")
	}
}

// obs builds n identical observations.
func obs(component string, ms int64, n int) []core.Observation {
	out := make([]core.Observation, n)
	for i := range out {
		out[i] = core.Observation{Component: component, MS: ms}
	}
	return out
}

const t0 = int64(1499000000000)

func TestEngineFiresAndResolves(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "alloc: p99(alloc) < 500ms over 1m")})

	// Healthy traffic: no transition.
	e.ObserveAt(obs("alloc", 100, 5), t0)
	if got := e.Status()[0].State; got != "ok" {
		t.Fatalf("state %q after healthy traffic", got)
	}
	if len(e.History()) != 0 {
		t.Fatalf("history %+v before any breach", e.History())
	}

	// Spike: p99 over threshold -> firing at the spike's event time.
	e.ObserveAt(obs("alloc", 2000, 10), t0+30_000)
	st := e.Status()[0]
	if st.State != "firing" {
		t.Fatalf("state %q after spike (value %v)", st.State, st.ValueMS)
	}
	h := e.History()
	if len(h) != 1 || h[0].State != "firing" || h[0].AtMS != t0+30_000 {
		t.Fatalf("history %+v", h)
	}

	// Time passes, the window drains -> resolved.
	e.Advance(t0 + 10*60_000)
	h = e.History()
	if len(h) != 2 || h[1].State != "ok" || h[1].AtMS != t0+10*60_000 {
		t.Fatalf("history %+v", h)
	}
	if e.Status()[0].State != "ok" {
		t.Fatal("rule still firing after window drained")
	}
	if e.FiringCount() != 0 {
		t.Fatal("firing count nonzero")
	}
}

func TestEngineBurnRateNeedsBothWindows(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "x: p99(alloc) < 500ms over 10m burn 1m")})

	// Breach both windows -> firing.
	e.ObserveAt(obs("alloc", 3000, 10), t0)
	if e.Status()[0].State != "firing" {
		t.Fatalf("status %+v", e.Status()[0])
	}

	// Recovery traffic two minutes later: the 1m burn window now holds
	// only healthy samples, so the alert resolves even though the 10m
	// window still contains the breach.
	e.ObserveAt(obs("alloc", 50, 10), t0+2*60_000)
	st := e.Status()[0]
	if st.State != "ok" {
		t.Fatalf("burn window clean but still firing: %+v", st)
	}
	if st.ValueMS < 500 {
		t.Fatalf("long window should still hold the breach, value %v", st.ValueMS)
	}
	h := e.History()
	if len(h) != 2 || h[0].State != "firing" || h[1].State != "ok" {
		t.Fatalf("history %+v", h)
	}
}

func TestEngineMinCount(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "x: p99(alloc) < 500ms over 5m min 5")})
	e.ObserveAt(obs("alloc", 9000, 4), t0)
	if e.Status()[0].State != "ok" {
		t.Fatal("fired below min count")
	}
	e.ObserveAt(obs("alloc", 9000, 1), t0+1000)
	if e.Status()[0].State != "firing" {
		t.Fatal("did not fire at min count")
	}
}

func TestEngineGreaterThanObjective(t *testing.T) {
	// An op-'>' rule asserts the value stays ABOVE the bound (e.g. a
	// canary that proves data is flowing with non-trivial delays).
	e := NewEngine([]Rule{mustRule(t, "x: p50(alloc) > 1ms over 5m")})
	e.ObserveAt(obs("alloc", 0, 5), t0)
	if e.Status()[0].State != "firing" {
		t.Fatal("value below a > objective should fire")
	}
	e.ObserveAt(obs("alloc", 100, 50), t0+1000)
	if e.Status()[0].State != "ok" {
		t.Fatal("value above a > objective should be ok")
	}
}

func TestEngineEventClockMonotonic(t *testing.T) {
	e := NewEngine(nil)
	e.Advance(t0 + 5000)
	e.Advance(t0) // stale stamp must not rewind
	if e.Now() != t0+5000 {
		t.Fatalf("clock rewound to %d", e.Now())
	}
}

func TestEngineCumulativeBreakdownAndOverflow(t *testing.T) {
	e := NewEngine(nil)
	e.SetMaxKeys(3)
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	for i, n := range nodes {
		e.ObserveAt([]core.Observation{{Component: "localization", Node: n, MS: int64(100 * (i + 1))}}, t0+int64(i)*1000)
	}
	cb := e.Breakdown()
	if got := cb.Component("localization").Count(); got != 5 {
		t.Fatalf("cumulative count %d, want 5 (overflow must not drop observations)", got)
	}
	// 3 exact keys + 1 overflow key.
	if len(cb.Sketches) != 4 {
		t.Fatalf("%d keys, want 4", len(cb.Sketches))
	}
	if e.OverflowObservations() != 2 {
		t.Fatalf("overflow observations %d, want 2", e.OverflowObservations())
	}
	byNode := cb.ByNode("localization")
	if s := byNode[Overflow]; s == nil || s.Count() != 2 {
		t.Fatalf("overflow bucket %+v", byNode)
	}
}

func TestEngineObserveApp(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "tot: p50(total) < 10s over 5m")})
	a := &core.AppTrace{
		Queue:     "prod",
		Submitted: t0,
		Decomp: &core.Decomposition{
			Total: 15_000, AM: 2000, Driver: 1000, Executor: 3000,
			Alloc: core.Missing, Complete: true,
		},
	}
	e.ObserveApp(a)
	if e.AppsIngested() != 1 {
		t.Fatal("app not counted")
	}
	// Event time = submission + total.
	if e.Now() != t0+15_000 {
		t.Fatalf("event clock %d, want %d", e.Now(), t0+15_000)
	}
	st := e.Status()[0]
	if st.State != "firing" || st.WindowCount != 1 {
		t.Fatalf("status %+v", st)
	}
	// Missing alloc must not be aggregated.
	if e.Breakdown().Component("alloc").Count() != 0 {
		t.Fatal("Missing component leaked into the aggregate")
	}
	if got := e.Breakdown().ByQueue("total")["prod"]; got == nil || got.Count() != 1 {
		t.Fatal("queue attribution lost")
	}
}

func TestRingPartialBucketApproximation(t *testing.T) {
	// The oldest overlapping bucket is included whole: a sample just
	// outside the nominal window but inside its bucket still counts.
	r := newRing(60_000, 0.01) // 5s buckets
	r.add(100, t0, "")
	if got := r.merged(t0 + 60_000 + 2_000).Count(); got != 1 {
		t.Fatalf("sample in partial bucket dropped (count %d)", got)
	}
	// One full bucket width past the window it is gone.
	if got := r.merged(t0 + 60_000 + 5_000).Count(); got != 0 {
		t.Fatalf("expired sample survived (count %d)", got)
	}
}

func TestRingRecyclesSlots(t *testing.T) {
	r := newRing(10_000, 0.01) // 1s buckets, 11 slots
	r.add(1, t0, "")
	// Far future stamp maps to the same slot index family eventually;
	// the old epoch must be discarded, not merged.
	r.add(2, t0+11_000, "")
	m := r.merged(t0 + 11_000)
	if m.Count() != 1 {
		t.Fatalf("stale epoch leaked: count %d", m.Count())
	}
}
