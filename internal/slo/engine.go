package slo

import (
	"repro/internal/core"
	"repro/internal/digest"
)

// State is one rule's alert state.
type State int

const (
	StateOK State = iota
	StateFiring
)

func (s State) String() string {
	if s == StateFiring {
		return "firing"
	}
	return "ok"
}

// Transition is one recorded alert edge (ok->firing or firing->ok). A
// firing edge captures the long window's exemplar set at fire time —
// the worst observations still inside the window, i.e. the applications
// that pushed the quantile over the threshold.
type Transition struct {
	Rule        string            `json:"rule"`
	State       string            `json:"state"`
	AtMS        int64             `json:"at_ms"`
	ValueMS     float64           `json:"value_ms"`
	BurnValueMS float64           `json:"burn_value_ms,omitempty"`
	ThresholdMS float64           `json:"threshold_ms"`
	WindowCount uint64            `json:"window_count"`
	Exemplars   []digest.Exemplar `json:"exemplars,omitempty"`
}

// RuleStatus is one rule's current evaluation, the /slo endpoint row.
// Exemplars names the current window's worst observations while the
// rule is firing.
type RuleStatus struct {
	Name        string            `json:"name"`
	Expr        string            `json:"expr"`
	State       string            `json:"state"`
	SinceMS     int64             `json:"since_ms,omitempty"`
	ValueMS     float64           `json:"value_ms"`
	BurnValueMS float64           `json:"burn_value_ms,omitempty"`
	ThresholdMS float64           `json:"threshold_ms"`
	WindowCount uint64            `json:"window_count"`
	Exemplars   []digest.Exemplar `json:"exemplars,omitempty"`
}

type ruleState struct {
	rule    Rule
	long    *ring
	burn    *ring // nil when the rule has no burn window
	state   State
	sinceMS int64
}

// DefaultMaxKeys bounds the cumulative breakdown's key cardinality.
// Garbage log lines can mint unbounded node names; past the cap, new
// (queue, node) combinations fold into a per-component "(overflow)" key
// so counts stay exact even when attribution saturates.
const DefaultMaxKeys = 4096

// Overflow is the queue/node label observations are folded under once
// MaxKeys distinct breakdown keys exist.
const Overflow = "(overflow)"

// historyCap bounds the recorded transition log; the oldest edges are
// dropped first.
const historyCap = 512

// Engine aggregates delay observations and evaluates SLO rules over
// rolling event-time windows. It is not goroutine-safe: the caller (the
// serve loop) serializes access.
//
// The engine's clock is event time — the max observation timestamp it
// has seen, advanced explicitly via Advance. Feeding historical logs
// therefore replays the alert timeline deterministically: a delay spike
// fires rules at the spike's log timestamps and recovery resolves them,
// no matter when the analysis actually runs.
type Engine struct {
	rules        []*ruleState
	agg          *core.ClusterBreakdown
	maxKeys      int
	overflowObs  uint64
	nowMS        int64
	history      []Transition
	appsIngested uint64
	onTransition func(Transition)
}

// NewEngine builds an engine evaluating the given rules (none is valid:
// the engine still aggregates for /aggregate).
func NewEngine(rules []Rule) *Engine {
	e := &Engine{agg: core.NewClusterBreakdown(), maxKeys: DefaultMaxKeys}
	for _, r := range rules {
		rs := &ruleState{rule: r, long: newRing(r.WindowMS, digest.DefaultAlpha)}
		if r.BurnMS > 0 {
			rs.burn = newRing(r.BurnMS, digest.DefaultAlpha)
		}
		e.rules = append(e.rules, rs)
	}
	return e
}

// SetMaxKeys overrides the cumulative breakdown's cardinality cap (for
// tests and memory-constrained deployments). Must be called before
// observations arrive.
func (e *Engine) SetMaxKeys(n int) {
	if n > 0 {
		e.maxKeys = n
	}
}

// OnTransition registers a hook invoked synchronously for every
// recorded alert edge (fire and resolve), after the engine's own state
// is updated. At most one hook; nil clears it. The serve loop uses it
// to land slo_fire/slo_resolve events in the flight recorder.
func (e *Engine) OnTransition(fn func(Transition)) { e.onTransition = fn }

// ObserveApp folds one decomposed application in, stamped at its event
// time (submission plus total delay, i.e. when its first task ran — the
// moment the delays became knowable), then re-evaluates every rule.
func (e *Engine) ObserveApp(a *core.AppTrace) {
	at := a.Submitted
	if d := a.Decomp; d != nil && d.Total >= 0 {
		at += d.Total
	}
	e.appsIngested++
	e.ObserveAt(core.Observations(a), at)
}

// ObserveAt folds raw observations in at an explicit event time and
// re-evaluates every rule at that time (if it advances the clock).
func (e *Engine) ObserveAt(obs []core.Observation, atMS int64) {
	for _, o := range obs {
		e.addCumulative(o)
		v := float64(o.MS)
		for _, rs := range e.rules {
			if !rs.rule.Matches(o) {
				continue
			}
			rs.long.add(v, atMS, o.App)
			if rs.burn != nil {
				rs.burn.add(v, atMS, o.App)
			}
		}
	}
	e.Advance(atMS)
}

func (e *Engine) addCumulative(o core.Observation) {
	k := core.BreakdownKey{Component: o.Component, Queue: o.Queue, Node: o.Node, Instance: o.Instance}
	if _, ok := e.agg.Sketches[k]; !ok && len(e.agg.Sketches) >= e.maxKeys {
		o.Queue, o.Node, o.Instance = Overflow, Overflow, ""
		e.overflowObs++
	}
	e.agg.Add(o)
}

// Advance moves the event clock forward (it never goes back) and
// re-evaluates every rule. Call it with the latest log timestamp even
// when no application completed, so rules resolve once their windows
// drain.
func (e *Engine) Advance(nowMS int64) {
	if nowMS > e.nowMS {
		e.nowMS = nowMS
	}
	e.evaluate()
}

func (e *Engine) evaluate() {
	for _, rs := range e.rules {
		v, burnV, count, exs, want := e.eval(rs)
		if want == rs.state {
			continue
		}
		rs.state = want
		rs.sinceMS = e.nowMS
		tr := Transition{
			Rule: rs.rule.Name, State: want.String(), AtMS: e.nowMS,
			ValueMS: v, BurnValueMS: burnV,
			ThresholdMS: rs.rule.ThresholdMS, WindowCount: count,
		}
		if want == StateFiring {
			tr.Exemplars = exs
		}
		e.history = append(e.history, tr)
		if len(e.history) > historyCap {
			e.history = e.history[len(e.history)-historyCap:]
		}
		if h := e.onTransition; h != nil {
			h(tr)
		}
	}
}

// eval computes one rule's current window value(s), the window's
// exemplar set, and the desired state. With a burn window configured,
// firing needs BOTH windows in violation (the multi-window burn-rate
// pattern): the long window proves the breach is sustained, the short
// one proves it is still happening — so recovery resolves the alert as
// soon as the short window is clean.
func (e *Engine) eval(rs *ruleState) (v, burnV float64, count uint64, exs []digest.Exemplar, want State) {
	long := rs.long.merged(e.nowMS)
	count = long.Count()
	v = long.Quantile(rs.rule.Quantile)
	exs = long.Exemplars()
	violated := count >= rs.rule.MinCount && !rs.rule.satisfied(v)
	if rs.burn != nil {
		short := rs.burn.merged(e.nowMS)
		burnV = short.Quantile(rs.rule.Quantile)
		violated = violated && short.Count() > 0 && !rs.rule.satisfied(burnV)
	}
	if violated {
		return v, burnV, count, exs, StateFiring
	}
	return v, burnV, count, exs, StateOK
}

// Now returns the engine's event clock (0 before any observation).
func (e *Engine) Now() int64 { return e.nowMS }

// AppsIngested returns how many applications were folded in.
func (e *Engine) AppsIngested() uint64 { return e.appsIngested }

// OverflowObservations returns how many observations were folded under
// the overflow key because the cardinality cap was hit.
func (e *Engine) OverflowObservations() uint64 { return e.overflowObs }

// Breakdown exposes the cumulative cluster breakdown (the /aggregate
// source). Callers must not mutate it concurrently with Observe.
func (e *Engine) Breakdown() *core.ClusterBreakdown { return e.agg }

// Rules returns the parsed rules in evaluation order.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// Status renders every rule's current evaluation at the event clock.
func (e *Engine) Status() []RuleStatus {
	out := make([]RuleStatus, 0, len(e.rules))
	for _, rs := range e.rules {
		v, burnV, count, exs, _ := e.eval(rs)
		st := RuleStatus{
			Name: rs.rule.Name, Expr: rs.rule.String(),
			State: rs.state.String(), SinceMS: rs.sinceMS,
			ValueMS: v, BurnValueMS: burnV,
			ThresholdMS: rs.rule.ThresholdMS, WindowCount: count,
		}
		if rs.state == StateFiring {
			st.Exemplars = exs
		}
		out = append(out, st)
	}
	return out
}

// History returns the recorded alert transitions, oldest first (bounded;
// the oldest edges fall off past the cap).
func (e *Engine) History() []Transition {
	out := make([]Transition, len(e.history))
	copy(out, e.history)
	return out
}

// FiringCount returns how many rules are currently firing.
func (e *Engine) FiringCount() int {
	n := 0
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			n++
		}
	}
	return n
}
