package slo

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestEngineFireCarriesExemplars: a firing rule must name the offending
// applications — the breaching window's exemplars ride both the history
// transition and the live status — and drop them again once resolved.
func TestEngineFireCarriesExemplars(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "alloc: p99(alloc) < 500ms over 1m")})

	// A healthy crowd, then one offender blows the objective.
	crowd := make([]core.Observation, 5)
	for i := range crowd {
		crowd[i] = core.Observation{
			Component: "alloc", MS: 100,
			App:  fmt.Sprintf("application_1499000000000_%04d", i+1),
			AtMS: t0 + int64(i),
		}
	}
	e.ObserveAt(crowd, t0)
	if got := e.Status()[0]; got.State != "ok" || len(got.Exemplars) != 0 {
		t.Fatalf("healthy status carries exemplars: %+v", got)
	}

	offender := "application_1499000000000_0099"
	e.ObserveAt([]core.Observation{
		{Component: "alloc", MS: 30_000, App: offender, AtMS: t0 + 30_000},
	}, t0+30_000)

	st := e.Status()[0]
	if st.State != "firing" {
		t.Fatalf("status %+v", st)
	}
	if len(st.Exemplars) == 0 || st.Exemplars[0].App != offender {
		t.Fatalf("firing status exemplars %+v do not lead with the offender", st.Exemplars)
	}
	h := e.History()
	if len(h) != 1 || h[0].State != "firing" {
		t.Fatalf("history %+v", h)
	}
	if len(h[0].Exemplars) == 0 || h[0].Exemplars[0].App != offender {
		t.Fatalf("fire transition exemplars %+v do not name the offender", h[0].Exemplars)
	}

	// Resolution: window drains, the resolve transition carries none.
	e.Advance(t0 + 10*60_000)
	h = e.History()
	if len(h) != 2 || h[1].State != "ok" {
		t.Fatalf("history after drain %+v", h)
	}
	if len(h[1].Exemplars) != 0 {
		t.Errorf("resolve transition carries exemplars: %+v", h[1].Exemplars)
	}
	if st := e.Status()[0]; len(st.Exemplars) != 0 {
		t.Errorf("ok status carries exemplars: %+v", st.Exemplars)
	}
}

// TestEngineOnTransitionHook: the single guarded hook site fires once per
// edge with the transition it appended to history, offenders included.
func TestEngineOnTransitionHook(t *testing.T) {
	e := NewEngine([]Rule{mustRule(t, "alloc: p99(alloc) < 500ms over 1m")})
	var fired []Transition
	e.OnTransition(func(tr Transition) { fired = append(fired, tr) })

	e.ObserveAt([]core.Observation{
		{Component: "alloc", MS: 30_000, App: "application_1499000000000_0007", AtMS: t0},
	}, t0)
	if len(fired) != 1 || fired[0].State != "firing" {
		t.Fatalf("hook calls %+v", fired)
	}
	if len(fired[0].Exemplars) == 0 || fired[0].Exemplars[0].App != "application_1499000000000_0007" {
		t.Fatalf("hook transition lacks the offender: %+v", fired[0].Exemplars)
	}
	e.Advance(t0 + 10*60_000)
	if len(fired) != 2 || fired[1].State != "ok" {
		t.Fatalf("hook missed the resolve edge: %+v", fired)
	}
	// Steady state: no edges, no calls.
	e.Advance(t0 + 11*60_000)
	if len(fired) != 2 {
		t.Fatalf("hook fired without a transition: %+v", fired)
	}
}
