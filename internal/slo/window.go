package slo

import (
	"repro/internal/core"
	"repro/internal/digest"
)

// ring is a rolling event-time window of quantile sketches: the window is
// chopped into fixed-width buckets laid out circularly, each holding one
// digest.Sketch. Adding an observation lands it in its event-time bucket
// (recycling the slot if it last held an older epoch); reading merges the
// buckets that overlap (now-window, now]. The oldest overlapping bucket
// is included whole, so the effective window is up to one bucket width
// longer than nominal — the usual staircase approximation.
type ring struct {
	windowMS int64
	widthMS  int64
	alpha    float64
	buckets  []ringBucket
}

type ringBucket struct {
	startMS int64 // aligned epoch start; 0 = never used
	sk      *digest.Sketch
}

// ringBuckets is the window subdivision: finer buckets track recovery
// faster at the cost of more sketches.
const ringBuckets = 12

// minBucketMS bounds the subdivision below: sub-second buckets buy
// nothing for delays mined from second-resolution logs.
const minBucketMS = int64(1000)

func newRing(windowMS int64, alpha float64) *ring {
	w := windowMS / ringBuckets
	if w < minBucketMS {
		w = minBucketMS
	}
	// Cover at least the nominal window even after rounding.
	n := int(windowMS/w) + 1
	return &ring{windowMS: windowMS, widthMS: w, alpha: alpha, buckets: make([]ringBucket, n)}
}

// add lands one observation in its event-time bucket. app, when
// non-empty, is offered to the bucket sketch's exemplar reservoir so
// the merged window can name its offenders at fire time.
func (r *ring) add(v float64, atMS int64, app string) {
	if atMS <= 0 {
		return
	}
	start := atMS - atMS%r.widthMS
	i := int(start/r.widthMS) % len(r.buckets)
	b := &r.buckets[i]
	if b.startMS != start {
		if b.sk == nil {
			b.sk = digest.New(r.alpha)
			b.sk.TrackExemplars(core.DefaultExemplarCap)
		} else {
			b.sk.Reset() // keeps the exemplar capacity
		}
		b.startMS = start
	}
	if app != "" {
		b.sk.AddExemplar(v, app, atMS, "")
	} else {
		b.sk.Add(v)
	}
}

// merged folds every bucket overlapping (nowMS-windowMS, nowMS] into one
// sketch.
func (r *ring) merged(nowMS int64) *digest.Sketch {
	out := digest.New(r.alpha)
	lo := nowMS - r.windowMS
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.sk == nil || b.startMS == 0 {
			continue
		}
		if b.startMS+r.widthMS > lo && b.startMS <= nowMS {
			out.Merge(b.sk) // same alpha by construction
		}
	}
	return out
}
