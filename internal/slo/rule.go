// Package slo evaluates service-level objectives over the delay
// decompositions that internal/core produces. It consumes completed
// application traces (typically via core.Stream's OnComplete hook), folds
// every delay component into rolling event-time quantile sketches, and
// checks declarative rules like
//
//	alloc-p99: p99(alloc) < 500ms over 5m
//	prod-total: p95(total, queue=prod) < 30s over 10m burn 2m
//
// against them, recording firing/resolved transitions. Evaluation is
// driven by observation (event) time, not wall clock, so replaying a
// directory of historical logs reproduces the exact alert timeline the
// rules would have produced live.
package slo

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Rule is one parsed SLO statement. The zero selector fields mean "any":
// a rule with Queue=="" matches observations from every queue.
type Rule struct {
	Name      string
	Component string
	Queue     string
	Node      string
	// Quantile in (0,1): p99 parses to 0.99.
	Quantile float64
	// Op is '<' or '>': the comparison the objective asserts. The rule is
	// violated when the window quantile fails the comparison.
	Op byte
	// ThresholdMS is the objective bound in milliseconds.
	ThresholdMS float64
	// WindowMS is the rolling evaluation window; BurnMS, when non-zero,
	// is the short burn-rate window (both must be violated to fire).
	WindowMS int64
	BurnMS   int64
	// MinCount is the minimum number of window samples before the rule
	// can be violated at all (default 1): empty windows never fire.
	MinCount uint64
}

// reRule captures: name, quantile, component, selector list, op,
// threshold, window, optional burn window, optional min count.
var reRule = regexp.MustCompile(
	`^([A-Za-z0-9._-]+)\s*:\s*p([0-9]+(?:\.[0-9]+)?)\s*\(\s*([a-z]+)` +
		`((?:\s*,\s*[a-z]+\s*=\s*[^,()\s]+)*)\s*\)\s*([<>])\s*(\S+)` +
		`\s+over\s+(\S+)(?:\s+burn\s+(\S+))?(?:\s+min\s+([0-9]+))?\s*$`)

var reSelector = regexp.MustCompile(`([a-z]+)\s*=\s*([^,()\s]+)`)

// ParseRule parses one rule line (comments and surrounding space already
// stripped) against the scheduling-delay component vocabulary
// (core.Components).
func ParseRule(s string) (Rule, error) {
	return ParseRuleFor(s, core.Components)
}

// ParseRuleFor parses one rule line validating its component against an
// explicit vocabulary. The engine itself is vocabulary-agnostic (rules
// match observations by string), so the same grammar and machinery
// evaluate both mined delay components and the pipeline's own stage
// latencies (obs.Stages) — the checker's self-SLOs.
func ParseRuleFor(s string, components []string) (Rule, error) {
	m := reRule.FindStringSubmatch(s)
	if m == nil {
		return Rule{}, fmt.Errorf("slo: cannot parse rule %q (want `name: p99(component[, queue=Q][, node=N]) < 500ms over 5m [burn 1m] [min 3]`)", s)
	}
	r := Rule{Name: m[1], Component: m[3], MinCount: 1}
	pct, err := strconv.ParseFloat(m[2], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return Rule{}, fmt.Errorf("slo: rule %s: quantile p%s out of (0,100)", r.Name, m[2])
	}
	r.Quantile = pct / 100
	valid := false
	for _, c := range components {
		if c == r.Component {
			valid = true
			break
		}
	}
	if !valid {
		return Rule{}, fmt.Errorf("slo: rule %s: unknown component %q (have %s)",
			r.Name, r.Component, strings.Join(components, ", "))
	}
	for _, sel := range reSelector.FindAllStringSubmatch(m[4], -1) {
		switch sel[1] {
		case "queue":
			r.Queue = sel[2]
		case "node":
			r.Node = sel[2]
		default:
			return Rule{}, fmt.Errorf("slo: rule %s: unknown selector %q (want queue= or node=)", r.Name, sel[1])
		}
	}
	r.Op = m[5][0]
	thr, err := time.ParseDuration(m[6])
	if err != nil || thr <= 0 {
		return Rule{}, fmt.Errorf("slo: rule %s: bad threshold %q", r.Name, m[6])
	}
	r.ThresholdMS = float64(thr) / float64(time.Millisecond)
	win, err := time.ParseDuration(m[7])
	if err != nil || win <= 0 {
		return Rule{}, fmt.Errorf("slo: rule %s: bad window %q", r.Name, m[7])
	}
	r.WindowMS = win.Milliseconds()
	if m[8] != "" {
		burn, err := time.ParseDuration(m[8])
		if err != nil || burn <= 0 {
			return Rule{}, fmt.Errorf("slo: rule %s: bad burn window %q", r.Name, m[8])
		}
		r.BurnMS = burn.Milliseconds()
		if r.BurnMS >= r.WindowMS {
			return Rule{}, fmt.Errorf("slo: rule %s: burn window %s must be shorter than the main window %s", r.Name, m[8], m[7])
		}
	}
	if m[9] != "" {
		n, err := strconv.ParseUint(m[9], 10, 64)
		if err != nil || n == 0 {
			return Rule{}, fmt.Errorf("slo: rule %s: bad min count %q", r.Name, m[9])
		}
		r.MinCount = n
	}
	return r, nil
}

// ParseRules reads a rule file: one rule per line, '#' comments and blank
// lines ignored. Duplicate rule names are rejected.
func ParseRules(rd io.Reader) ([]Rule, error) {
	return ParseRulesFor(rd, core.Components)
}

// ParseRulesFor is ParseRules with an explicit component vocabulary
// (see ParseRuleFor).
func ParseRulesFor(rd io.Reader, components []string) ([]Rule, error) {
	var out []Rule
	seen := make(map[string]bool)
	sc := bufio.NewScanner(rd)
	for lineNo := 1; sc.Scan(); lineNo++ {
		s := sc.Text()
		if i := strings.IndexByte(s, '#'); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		r, err := ParseRuleFor(s, components)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("line %d: slo: duplicate rule name %q", lineNo, r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	return out, nil
}

// Matches reports whether an observation falls under this rule's
// selector.
func (r Rule) Matches(o core.Observation) bool {
	if o.Component != r.Component {
		return false
	}
	if r.Queue != "" && o.Queue != r.Queue {
		return false
	}
	if r.Node != "" && o.Node != r.Node {
		return false
	}
	return true
}

// satisfied reports whether a window value meets the objective.
func (r Rule) satisfied(v float64) bool {
	if r.Op == '<' {
		return v < r.ThresholdMS
	}
	return v > r.ThresholdMS
}

// String renders the rule back in its canonical parseable form.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: p%s(%s", r.Name,
		strconv.FormatFloat(r.Quantile*100, 'f', -1, 64), r.Component)
	if r.Queue != "" {
		fmt.Fprintf(&b, ", queue=%s", r.Queue)
	}
	if r.Node != "" {
		fmt.Fprintf(&b, ", node=%s", r.Node)
	}
	fmt.Fprintf(&b, ") %c %s over %s", r.Op,
		fmtDur(int64(r.ThresholdMS)), fmtDur(r.WindowMS))
	if r.BurnMS > 0 {
		fmt.Fprintf(&b, " burn %s", fmtDur(r.BurnMS))
	}
	if r.MinCount > 1 {
		fmt.Fprintf(&b, " min %d", r.MinCount)
	}
	return b.String()
}

// fmtDur renders milliseconds the way the rule grammar reads them,
// without time.Duration's trailing zero units ("5m0s" -> "5m").
func fmtDur(ms int64) string {
	s := (time.Duration(ms) * time.Millisecond).String()
	if strings.HasSuffix(s, "m0s") {
		s = s[:len(s)-2]
	}
	if strings.HasSuffix(s, "h0m") {
		s = s[:len(s)-2]
	}
	return s
}
