package digest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank quantile of a sorted slice.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkBound asserts the sketch's documented bound: the reported
// quantile is within alpha (relative) of the exact nearest-rank value.
func checkBound(t *testing.T, s *Sketch, sorted []float64, p float64) {
	t.Helper()
	got := s.Quantile(p)
	want := exactQuantile(sorted, p)
	if want < 1 {
		// Sub-millisecond values collapse into the zero bucket; the
		// guarantee there is absolute: the report is also < 1.
		if got >= 1 {
			t.Errorf("p%.0f: got %v for exact %v (< 1 must stay < 1)", p*100, got, want)
		}
		return
	}
	if rel := math.Abs(got-want) / want; rel > s.Alpha()+1e-9 {
		t.Errorf("p%.0f: got %v, exact %v, relative error %.4f > alpha %v",
			p*100, got, want, rel, s.Alpha())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	for _, dist := range []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 10_000 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*2 + 5) }},
		{"heavy-tail", func(r *rand.Rand) float64 { return math.Pow(1/(1-r.Float64()), 1.5) }},
	} {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			s := New(DefaultAlpha)
			vals := make([]float64, 0, 20_000)
			for i := 0; i < 20_000; i++ {
				v := dist.gen(r)
				s.Add(v)
				vals = append(vals, v)
			}
			sort.Float64s(vals)
			for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				checkBound(t, s, vals, p)
			}
			if s.Count() != 20_000 {
				t.Errorf("count=%d", s.Count())
			}
			if got, want := s.Min(), vals[0]; got != want {
				t.Errorf("min=%v want %v", got, want)
			}
			if got, want := s.Max(), vals[len(vals)-1]; got != want {
				t.Errorf("max=%v want %v", got, want)
			}
			wantSum := 0.0
			for _, v := range vals {
				wantSum += v
			}
			if math.Abs(s.Sum()-wantSum)/wantSum > 1e-9 {
				t.Errorf("sum=%v want %v", s.Sum(), wantSum)
			}
		})
	}
}

// TestMergeEquivalence is the sharding guarantee: merging per-shard
// sketches must be byte-identical to sketching the whole stream, so the
// merged quantiles carry the same error bound as whole-run ones.
func TestMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	whole := New(DefaultAlpha)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = New(DefaultAlpha)
	}
	var vals []float64
	for i := 0; i < 10_000; i++ {
		v := math.Exp(r.NormFloat64() + 4)
		whole.Add(v)
		shards[i%len(shards)].Add(v)
		vals = append(vals, v)
	}
	merged := New(DefaultAlpha)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged scalar state differs from whole-run state")
	}
	// Sums accumulate in different orders across shards; only the float
	// rounding may differ.
	if math.Abs(merged.Sum()-whole.Sum())/whole.Sum() > 1e-12 {
		t.Fatalf("merged sum %v vs whole %v", merged.Sum(), whole.Sum())
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if m, w := merged.Quantile(p), whole.Quantile(p); m != w {
			t.Errorf("p%.0f: merged %v != whole %v (merge must be exact)", p*100, m, w)
		}
		checkBound(t, merged, vals, p)
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := New(0.01), New(0.02)
	b.Add(5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different alphas must fail")
	}
	if err := a.Merge(New(0.02)); err != nil {
		t.Fatalf("merging an EMPTY mismatched sketch is harmless, got %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestZeroAndNegative(t *testing.T) {
	s := New(DefaultAlpha)
	s.Add(-5) // degraded input: clamped, not panicking
	s.Add(0)
	s.Add(0.4)
	s.Add(100)
	if s.Count() != 4 {
		t.Fatalf("count=%d", s.Count())
	}
	if q := s.Quantile(0.5); q >= 1 {
		t.Errorf("p50=%v, want sub-millisecond", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("p100=%v, want exactly max=100", q)
	}
	if s.Min() != 0 {
		t.Errorf("min=%v, want 0 (clamped)", s.Min())
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(DefaultAlpha)
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Errorf("empty sketch must read as zeros")
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := New(DefaultAlpha)
	for i := 0; i < 5_000; i++ {
		s.Add(math.Exp(r.NormFloat64()*1.5 + 3))
	}
	s.Add(0) // exercise the zero bucket
	raw, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Compactness: delta-encoded buckets should stay near 2-3 bytes each.
	if len(raw) > 32+6*1000 {
		t.Errorf("encoding is %d bytes for ~%d buckets — not compact", len(raw), len(s.buckets))
	}
	var back Sketch
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count() || back.Sum() != s.Sum() ||
		back.Min() != s.Min() || back.Max() != s.Max() || back.Alpha() != s.Alpha() {
		t.Fatalf("scalar state did not survive the roundtrip")
	}
	for _, p := range []float64{0.01, 0.5, 0.95, 0.99} {
		if a, b := s.Quantile(p), back.Quantile(p); a != b {
			t.Errorf("p%.0f: %v != %v after roundtrip", p*100, a, b)
		}
	}
	// A decoded sketch must merge back into a live one.
	if err := s.Merge(&back); err != nil {
		t.Fatal(err)
	}

	roundtripEmpty := New(0.05)
	raw, err = roundtripEmpty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var e Sketch
	if err := e.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 0 || e.Alpha() != 0.05 {
		t.Errorf("empty roundtrip: count=%d alpha=%v", e.Count(), e.Alpha())
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New(DefaultAlpha)
	s.Add(12)
	s.Add(7000)
	raw, _ := s.MarshalBinary()
	var back Sketch
	for _, bad := range [][]byte{
		nil,
		[]byte("x"),
		[]byte("bad frame entirely"),
		raw[:len(raw)-1],
		raw[:5],
		append([]byte("zz1"), raw[3:]...),
	} {
		if err := back.UnmarshalBinary(bad); err == nil {
			t.Errorf("corrupt frame %q decoded without error", bad)
		}
	}
}

func TestCloneAndReset(t *testing.T) {
	s := New(DefaultAlpha)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	c := s.Clone()
	s.Add(1e6) // must not leak into the clone
	if c.Max() == s.Max() {
		t.Error("clone shares state with original")
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Error("reset did not empty the sketch")
	}
	if c.Count() != 100 {
		t.Error("reset leaked into clone")
	}
}

func TestAddN(t *testing.T) {
	a, b := New(DefaultAlpha), New(DefaultAlpha)
	for i := 0; i < 10; i++ {
		a.Add(250)
	}
	b.AddN(250, 10)
	b.AddN(99, 0) // no-op
	if a.Quantile(0.5) != b.Quantile(0.5) || a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Errorf("AddN(v,10) differs from 10x Add(v)")
	}
}
