// Package digest implements a mergeable quantile sketch for delay
// distributions: a fixed-relative-precision, log-bucketed histogram in
// the style of DDSketch ("Computing quantiles with relative-error
// guarantees"). It is the aggregation substrate behind cluster-level
// percentile tables and SLO evaluation.
//
// Model: non-negative observations (delays in milliseconds) are counted
// into geometrically spaced buckets. Bucket i covers (gamma^(i-1),
// gamma^i] with gamma = (1+alpha)/(1-alpha); reporting the geometric
// bucket midpoint guarantees a RELATIVE error of at most alpha for every
// quantile:
//
//	|Quantile(p) - exact_p| <= alpha * exact_p
//
// Values in [0, 1) land in a dedicated zero bucket reported as 0 (a
// sub-millisecond delay is "zero" at log4j's 1 ms precision); negative
// values are clamped into it too, so degraded inputs cannot corrupt the
// sketch. Merging sketches of equal alpha is exact bucket-wise addition:
// Merge(a, b) yields bit-for-bit the sketch that would have resulted from
// adding both input streams to one sketch, so sharded runs can be
// combined in any order or grouping without widening the error bound.
//
// Sketches are NOT safe for concurrent use; callers that share one
// across goroutines must lock (internal/slo does).
package digest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the relative accuracy used across the repo: 1%
// error on any quantile, ~275 buckets per decade-spanning component.
const DefaultAlpha = 0.01

// Sketch is one mergeable quantile sketch. The zero value is unusable;
// call New.
type Sketch struct {
	alpha    float64
	gamma    float64
	invLnGam float64 // 1/ln(gamma), cached for Add's hot path

	buckets map[int32]uint64 // log-indexed counts, sparse
	zero    uint64           // observations < 1 (incl. clamped negatives)
	count   uint64
	sum     float64
	min     float64
	max     float64

	// Tail-biased exemplar reservoir (see exemplar.go). exCap == 0 means
	// tracking is off and the sketch behaves exactly as before.
	exCap int
	ex    []Exemplar // sorted by exemplarLess, len <= exCap
}

// New returns an empty sketch with the given relative accuracy alpha
// (0 < alpha < 1). Use DefaultAlpha unless a caller needs a documented
// different bound.
func New(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("digest: alpha %v out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		invLnGam: 1 / math.Log(gamma),
		buckets:  make(map[int32]uint64),
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// key maps a value >= 1 to its bucket index: the smallest i with
// gamma^i >= v.
func (s *Sketch) key(v float64) int32 {
	return int32(math.Ceil(math.Log(v) * s.invLnGam))
}

// value maps a bucket index back to the bucket's midpoint: the
// representative with relative error <= alpha for every value the bucket
// covers.
func (s *Sketch) value(k int32) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Add records one observation.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN records n identical observations (n == 0 is a no-op).
func (s *Sketch) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	if v < 1 {
		s.zero += n
	} else {
		s.buckets[s.key(v)] += n
	}
	s.count += n
	s.sum += v * float64(n)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of all observations (exact, not bucketed).
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 on an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation (exact), or 0 on an empty sketch.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (exact), or 0 on an empty sketch.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the value at rank p in [0,1] (p50 = Quantile(0.5)),
// within relative error alpha. Out-of-range p is clamped; an empty
// sketch yields 0. The returned value is additionally clamped into
// [Min, Max], which are tracked exactly.
func (s *Sketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the target observation, 1-based, nearest-rank definition.
	rank := uint64(math.Ceil(p * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	var out float64
	if rank <= s.zero {
		out = 0
	} else {
		keys := s.sortedKeys()
		cum := s.zero
		out = s.max // fall through only on float accumulation quirks
		for _, k := range keys {
			cum += s.buckets[k]
			if cum >= rank {
				out = s.value(k)
				break
			}
		}
	}
	if out < s.min {
		out = s.min
	}
	if out > s.max {
		out = s.max
	}
	return out
}

// CountAbove returns how many observations were recorded at or above v,
// at bucket granularity: a bucket contributes when its representative
// value is >= v, so the answer carries the same relative-error bound as
// Quantile. v <= 0 counts everything.
func (s *Sketch) CountAbove(v float64) uint64 {
	if v <= 0 {
		return s.count
	}
	var n uint64
	for k, c := range s.buckets {
		if s.value(k) >= v {
			n += c
		}
	}
	return n
}

func (s *Sketch) sortedKeys() []int32 {
	keys := make([]int32, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Merge folds other into s (other is unchanged). Sketches must share the
// same alpha — merging differently-bucketed sketches has no error bound,
// so it is refused.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("digest: cannot merge alpha=%v into alpha=%v", other.alpha, s.alpha)
	}
	for k, n := range other.buckets {
		s.buckets[k] += n
	}
	s.zero += other.zero
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.mergeExemplars(other)
	return nil
}

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.buckets = make(map[int32]uint64, len(s.buckets))
	for k, n := range s.buckets {
		c.buckets[k] = n
	}
	if s.ex != nil {
		c.ex = make([]Exemplar, len(s.ex))
		copy(c.ex, s.ex)
	}
	return &c
}

// Reset empties the sketch, keeping its accuracy and its exemplar
// capacity (a recycled window bucket keeps tracking).
func (s *Sketch) Reset() {
	s.buckets = make(map[int32]uint64)
	s.zero = 0
	s.count = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.ex = nil
}

// Serialization: a compact binary frame so per-shard sketches can be
// shipped and merged. Layout (all multi-byte values little-endian or
// varint):
//
//	magic "dg1" (3 bytes)
//	alpha    float64 bits (8 bytes)
//	zero     uvarint
//	count    uvarint
//	sum      float64 bits (8 bytes)
//	min,max  float64 bits (8+8 bytes, only when count > 0)
//	nbuckets uvarint
//	then per bucket, keys ascending: key delta (varint from previous
//	key), count (uvarint)
//
// Delta-encoding the sorted keys keeps real sketches (dense runs of
// adjacent buckets) to ~2 bytes per bucket.

var magic = []byte("dg1")

// MarshalBinary serializes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 32+3*len(s.buckets))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.alpha))
	buf = binary.AppendUvarint(buf, s.zero)
	buf = binary.AppendUvarint(buf, s.count)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.sum))
	if s.count > 0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.max))
	}
	keys := s.sortedKeys()
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	prev := int64(0)
	for _, k := range keys {
		buf = binary.AppendVarint(buf, int64(k)-prev)
		buf = binary.AppendUvarint(buf, s.buckets[k])
		prev = int64(k)
	}
	buf = appendExemplarSection(buf, s)
	return buf, nil
}

// ErrCorrupt reports an undecodable sketch frame.
var ErrCorrupt = errors.New("digest: corrupt sketch encoding")

// UnmarshalBinary decodes a frame produced by MarshalBinary, replacing
// the receiver's state (including its alpha).
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < len(magic)+8 || string(data[:3]) != string(magic) {
		return ErrCorrupt
	}
	data = data[3:]
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	if !(alpha > 0 && alpha < 1) {
		return ErrCorrupt
	}
	ns := New(alpha)
	var n int
	if ns.zero, n = binary.Uvarint(data); n <= 0 {
		return ErrCorrupt
	}
	data = data[n:]
	if ns.count, n = binary.Uvarint(data); n <= 0 {
		return ErrCorrupt
	}
	data = data[n:]
	if len(data) < 8 {
		return ErrCorrupt
	}
	ns.sum = math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	if ns.count > 0 {
		if len(data) < 16 {
			return ErrCorrupt
		}
		ns.min = math.Float64frombits(binary.LittleEndian.Uint64(data))
		ns.max = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
	}
	nb, n := binary.Uvarint(data)
	if n <= 0 || nb > uint64(len(data)) { // each bucket takes >= 2 bytes
		return ErrCorrupt
	}
	data = data[n:]
	prev := int64(0)
	var total uint64
	for i := uint64(0); i < nb; i++ {
		delta, dn := binary.Varint(data)
		if dn <= 0 {
			return ErrCorrupt
		}
		data = data[dn:]
		cnt, cn := binary.Uvarint(data)
		if cn <= 0 || cnt == 0 {
			return ErrCorrupt
		}
		data = data[cn:]
		key := prev + delta
		if key < math.MinInt32 || key > math.MaxInt32 {
			return ErrCorrupt
		}
		ns.buckets[int32(key)] = cnt
		prev = key
		total += cnt
	}
	if total+ns.zero != ns.count {
		return ErrCorrupt
	}
	if err := decodeExemplarSection(data, ns); err != nil {
		return err
	}
	*s = *ns
	return nil
}
