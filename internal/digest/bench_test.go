package digest

import (
	"math"
	"math/rand"
	"testing"
)

// The sketch sits on the per-completed-app hot path of -serve (every
// component observation of every app lands in several keyed sketches),
// so Add, Quantile, Merge and the wire encoding are benchmarked and kept
// in CI's bench smoke step.

func benchValues(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(r.NormFloat64()*1.5 + 4)
	}
	return vals
}

func BenchmarkAdd(b *testing.B) {
	vals := benchValues(1024)
	s := New(DefaultAlpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&1023])
	}
}

func BenchmarkQuantile(b *testing.B) {
	s := New(DefaultAlpha)
	for _, v := range benchValues(100_000) {
		s.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkMerge(b *testing.B) {
	shard := New(DefaultAlpha)
	for _, v := range benchValues(10_000) {
		shard.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := New(DefaultAlpha)
		if err := acc.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalRoundtrip(b *testing.B) {
	s := New(DefaultAlpha)
	for _, v := range benchValues(10_000) {
		s.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := s.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back Sketch
		if err := back.UnmarshalBinary(raw); err != nil {
			b.Fatal(err)
		}
	}
}
