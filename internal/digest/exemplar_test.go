package digest

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
)

// lcg is a tiny deterministic generator for the property tests (no
// math/rand: determinism is part of the package contract).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// float returns an integral value in [0, max): delay observations are
// whole milliseconds, which keeps float summation exact in any order —
// the property the byte-identity contract rests on.
func (r *lcg) float(max float64) float64 {
	return float64(r.next() % uint64(max))
}

// genExemplars builds n deterministic (value, app, atMS) triples.
func genExemplars(seed uint64, n int) []Exemplar {
	r := lcg(seed)
	out := make([]Exemplar, n)
	for i := range out {
		out[i] = Exemplar{
			App:     fmt.Sprintf("application_1499000000000_%04d", r.next()%40),
			ValueMS: r.float(50_000),
			AtMS:    1_499_000_000_000 + int64(r.next()%3_600_000),
		}
	}
	return out
}

// bruteTopK is the reference: sort the full multiset by exemplarLess and
// keep the first k.
func bruteTopK(all []Exemplar, k int) []Exemplar {
	s := append([]Exemplar(nil), all...)
	sort.Slice(s, func(i, j int) bool { return exemplarLess(s[i], s[j]) })
	if len(s) > k {
		s = s[:k]
	}
	return s
}

func feed(k int, exs []Exemplar) *Sketch {
	s := New(0.01)
	s.TrackExemplars(k)
	for _, e := range exs {
		s.AddExemplar(e.ValueMS, e.App, e.AtMS, e.Shard)
	}
	return s
}

// TestExemplarReservoirExact pins the reservoir to the brute-force top-k
// of the input multiset: tail-biased, bounded, deterministic.
func TestExemplarReservoirExact(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 200} {
		exs := genExemplars(uint64(n)+1, n)
		s := feed(8, exs)
		got := s.Exemplars()
		want := bruteTopK(exs, 8)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: reservoir %v, want %v", n, got, want)
		}
		if len(got) > 8 {
			t.Errorf("n=%d: reservoir exceeded cap: %d", n, len(got))
		}
		if s.Count() != uint64(n) {
			t.Errorf("n=%d: sketch count %d (AddExemplar must feed the sketch too)", n, s.Count())
		}
	}
}

// TestExemplarMergeOrderInsensitive splits one multiset into chunks,
// feeds each chunk to its own sketch, and merges in several different
// orders and groupings. Every merge order must produce byte-identical
// frames — the property the worker-count invariance rests on.
func TestExemplarMergeOrderInsensitive(t *testing.T) {
	all := genExemplars(42, 120)
	chunk := func(i, parts int) []Exemplar {
		var out []Exemplar
		for j, e := range all {
			if j%parts == i {
				out = append(out, e)
			}
		}
		return out
	}
	ref := feed(8, all)
	refBytes, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{2, 3, 4, 8} {
		// Left-to-right, right-to-left, and pairwise-tree merges.
		orders := [][]int{make([]int, parts), make([]int, parts)}
		for i := 0; i < parts; i++ {
			orders[0][i] = i
			orders[1][i] = parts - 1 - i
		}
		for oi, order := range orders {
			m := New(0.01)
			m.TrackExemplars(8)
			for _, i := range order {
				if err := m.Merge(feed(8, chunk(i, parts))); err != nil {
					t.Fatal(err)
				}
			}
			got, err := m.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Errorf("parts=%d order=%d: merged frame diverges from serial feed", parts, oi)
			}
		}
	}
}

// TestExemplarMergeAssociative checks (a⊔b)⊔c == a⊔(b⊔c) byte for byte.
func TestExemplarMergeAssociative(t *testing.T) {
	a, b, c := genExemplars(1, 30), genExemplars(2, 30), genExemplars(3, 30)
	left := feed(8, a)
	if err := left.Merge(feed(8, b)); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(feed(8, c)); err != nil {
		t.Fatal(err)
	}
	bc := feed(8, b)
	if err := bc.Merge(feed(8, c)); err != nil {
		t.Fatal(err)
	}
	right := feed(8, a)
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	lb, err := left.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := right.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, rb) {
		t.Error("exemplar merge is not associative")
	}
}

// TestExemplarBinaryRoundTrip pins the optional trailing section: frames
// with tracking round-trip exactly, frames without it stay decodable
// (backward compatibility with pre-exemplar frames).
func TestExemplarBinaryRoundTrip(t *testing.T) {
	s := feed(4, genExemplars(7, 20))
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.ExemplarCap() != 4 || !reflect.DeepEqual(d.Exemplars(), s.Exemplars()) {
		t.Errorf("round trip lost exemplars: cap=%d got %v want %v", d.ExemplarCap(), d.Exemplars(), s.Exemplars())
	}

	// A plain sketch (no tracking) round-trips with tracking disabled.
	p := New(0.01)
	p.Add(3)
	pb, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pd Sketch
	if err := pd.UnmarshalBinary(pb); err != nil {
		t.Fatal(err)
	}
	if pd.ExemplarCap() != 0 || len(pd.Exemplars()) != 0 {
		t.Errorf("plain frame decoded with tracking on: cap=%d", pd.ExemplarCap())
	}
}

// TestExemplarDecodeRejectsUnsorted corrupts the section ordering and
// expects ErrCorrupt, not silent acceptance.
func TestExemplarDecodeRejectsUnsorted(t *testing.T) {
	a := New(0.01)
	a.TrackExemplars(4)
	a.AddExemplar(10, "app-b", 5, "")
	a.AddExemplar(20, "app-a", 6, "")
	b, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The two exemplars serialize largest-first (20 then 10). Swapping
	// the float payloads breaks the ordering invariant.
	i := bytes.Index(b, []byte("app-a"))
	j := bytes.Index(b, []byte("app-b"))
	if i < 0 || j < 0 {
		t.Fatal("exemplar apps not found in frame")
	}
	for k := 0; k < 8; k++ {
		b[i+5+k], b[j+5+k] = b[j+5+k], b[i+5+k]
	}
	var d Sketch
	if err := d.UnmarshalBinary(b); err == nil {
		t.Error("unsorted exemplar section decoded without error")
	}
}

// TestExemplarEdgeValues: NaN is dropped entirely, negative values clamp
// to zero (consistent with Sketch.Add), empty app still counts.
func TestExemplarEdgeValues(t *testing.T) {
	s := New(0.01)
	s.TrackExemplars(4)
	s.AddExemplar(math.NaN(), "nan-app", 1, "")
	if s.Count() != 0 || len(s.Exemplars()) != 0 {
		t.Errorf("NaN was recorded: count=%d exemplars=%v", s.Count(), s.Exemplars())
	}
	s.AddExemplar(-5, "neg-app", 2, "")
	if s.Count() != 1 {
		t.Fatalf("negative value dropped: count=%d", s.Count())
	}
	if ex := s.Exemplars(); len(ex) != 1 || ex[0].ValueMS != 0 {
		t.Errorf("negative value not clamped: %v", ex)
	}
}

// TestExemplarResetKeepsCapacity pins the ring-slot recycling contract:
// Reset clears the reservoir but keeps tracking enabled at the same cap.
func TestExemplarResetKeepsCapacity(t *testing.T) {
	s := feed(4, genExemplars(9, 10))
	s.Reset()
	if s.ExemplarCap() != 4 {
		t.Fatalf("Reset dropped exemplar capacity: %d", s.ExemplarCap())
	}
	if len(s.Exemplars()) != 0 {
		t.Fatalf("Reset kept exemplars: %v", s.Exemplars())
	}
	s.AddExemplar(7, "after-reset", 1, "")
	if ex := s.Exemplars(); len(ex) != 1 || ex[0].App != "after-reset" {
		t.Errorf("tracking dead after Reset: %v", ex)
	}
}

// TestCountAbove checks the tail-mass counter the explain ranking uses.
func TestCountAbove(t *testing.T) {
	s := New(0.01)
	for _, v := range []float64{1, 10, 100, 1000, 10000} {
		s.Add(v)
	}
	if got := s.CountAbove(0); got != 5 {
		t.Errorf("CountAbove(0) = %d, want 5", got)
	}
	if got := s.CountAbove(999); got != 2 {
		t.Errorf("CountAbove(999) = %d, want 2", got)
	}
	if got := s.CountAbove(1e9); got != 0 {
		t.Errorf("CountAbove(1e9) = %d, want 0", got)
	}
}
