package digest

import (
	"encoding/binary"
	"math"
)

// Exemplar links one concrete observation back to the application that
// produced it: the Prometheus-exemplar idea applied to delay sketches.
// A sketch with exemplar tracking enabled keeps a bounded, tail-biased
// reservoir of them — the K largest observations seen, under a total
// order that makes every reservoir operation deterministic — so an
// aggregated quantile cell can always answer "which apps put mass
// here".
//
// Shard is a free-form origin label for the future multi-ingester
// fleet (each ingester stamps its identity before shipping snapshots).
// It is deliberately NOT the in-process worker index: shard routing
// depends on the -workers count, and stamping it would break the
// byte-identical-at-any-worker-count contract.
type Exemplar struct {
	App     string  `json:"app"`
	ValueMS float64 `json:"value_ms"`
	AtMS    int64   `json:"at_ms"`
	Shard   string  `json:"shard,omitempty"`
}

// exemplarLess is the reservoir's total order: larger values first
// (tail bias), then App, AtMS, Shard ascending so equal-valued
// exemplars still order deterministically.
func exemplarLess(a, b Exemplar) bool {
	if a.ValueMS != b.ValueMS {
		return a.ValueMS > b.ValueMS
	}
	if a.App != b.App {
		return a.App < b.App
	}
	if a.AtMS != b.AtMS {
		return a.AtMS < b.AtMS
	}
	return a.Shard < b.Shard
}

// TrackExemplars enables exemplar tracking with reservoir capacity k
// (k <= 0 disables tracking and drops any held exemplars). Shrinking
// the capacity truncates the reservoir.
func (s *Sketch) TrackExemplars(k int) {
	if k <= 0 {
		s.exCap, s.ex = 0, nil
		return
	}
	s.exCap = k
	if len(s.ex) > k {
		s.ex = s.ex[:k:k]
	}
}

// ExemplarCap returns the reservoir capacity (0 = tracking disabled).
func (s *Sketch) ExemplarCap() int { return s.exCap }

// Exemplars returns a copy of the reservoir, largest value first.
func (s *Sketch) Exemplars() []Exemplar {
	if len(s.ex) == 0 {
		return nil
	}
	out := make([]Exemplar, len(s.ex))
	copy(out, s.ex)
	return out
}

// AddExemplar records one observation and, when tracking is enabled,
// offers it to the reservoir. NaN values are dropped like Add does;
// negative values clamp to 0 in both the histogram and the exemplar.
func (s *Sketch) AddExemplar(v float64, app string, atMS int64, shard string) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	s.Add(v)
	if s.exCap > 0 {
		s.offer(Exemplar{App: app, ValueMS: v, AtMS: atMS, Shard: shard})
	}
}

// offer inserts e into the sorted reservoir, keeping the top exCap
// entries under exemplarLess. Keeping exactly the K greatest elements
// of the multiset of offered exemplars makes the reservoir's contents
// a function of the offered SET alone — insertion order, grouping, and
// merge order cannot change it, which is what makes sharded merges
// byte-identical.
func (s *Sketch) offer(e Exemplar) {
	// Find insertion point in the sorted slice (small K, linear is fine
	// and branch-predictable; most offers lose to the current minimum).
	if len(s.ex) == s.exCap && !exemplarLess(e, s.ex[len(s.ex)-1]) {
		return
	}
	i := len(s.ex)
	for i > 0 && exemplarLess(e, s.ex[i-1]) {
		i--
	}
	s.ex = append(s.ex, Exemplar{})
	copy(s.ex[i+1:], s.ex[i:])
	s.ex[i] = e
	if len(s.ex) > s.exCap {
		s.ex = s.ex[:s.exCap]
	}
}

// mergeExemplars folds other's reservoir into s as part of Merge. If
// either side tracks exemplars the result tracks, at the larger of the
// two capacities, holding the top-K of the union — commutative and
// associative by the same top-K-of-multiset argument as offer.
func (s *Sketch) mergeExemplars(other *Sketch) {
	if other.exCap > s.exCap {
		s.exCap = other.exCap
	}
	if s.exCap == 0 {
		return
	}
	for _, e := range other.ex {
		s.offer(e)
	}
}

// Exemplar frame section, appended after the bucket list by
// MarshalBinary when tracking is enabled:
//
//	cap      uvarint (reservoir capacity, >= 1)
//	n        uvarint (held exemplars, <= cap)
//	then per exemplar: app (uvarint len + bytes), value float64 bits,
//	atMS varint, shard (uvarint len + bytes)
//
// A frame with no trailing section decodes with tracking disabled, so
// pre-exemplar frames and exemplar-free sketches round-trip unchanged.

const maxExemplarCap = 1 << 20 // decode sanity bound

func appendExemplarSection(buf []byte, s *Sketch) []byte {
	if s.exCap == 0 {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(s.exCap))
	buf = binary.AppendUvarint(buf, uint64(len(s.ex)))
	for _, e := range s.ex {
		buf = binary.AppendUvarint(buf, uint64(len(e.App)))
		buf = append(buf, e.App...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.ValueMS))
		buf = binary.AppendVarint(buf, e.AtMS)
		buf = binary.AppendUvarint(buf, uint64(len(e.Shard)))
		buf = append(buf, e.Shard...)
	}
	return buf
}

func decodeExemplarSection(data []byte, s *Sketch) error {
	if len(data) == 0 {
		return nil
	}
	cap64, n := binary.Uvarint(data)
	if n <= 0 || cap64 == 0 || cap64 > maxExemplarCap {
		return ErrCorrupt
	}
	data = data[n:]
	cnt, n := binary.Uvarint(data)
	if n <= 0 || cnt > cap64 || cnt > uint64(len(data)) {
		return ErrCorrupt
	}
	data = data[n:]
	s.exCap = int(cap64)
	s.ex = make([]Exemplar, 0, cnt)
	readStr := func() (string, bool) {
		l, n := binary.Uvarint(data)
		if n <= 0 || l > uint64(len(data)-n) {
			return "", false
		}
		v := string(data[n : n+int(l)])
		data = data[n+int(l):]
		return v, true
	}
	prev := Exemplar{}
	for i := uint64(0); i < cnt; i++ {
		var e Exemplar
		var ok bool
		if e.App, ok = readStr(); !ok {
			return ErrCorrupt
		}
		if len(data) < 8 {
			return ErrCorrupt
		}
		e.ValueMS = math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		at, n := binary.Varint(data)
		if n <= 0 {
			return ErrCorrupt
		}
		e.AtMS = at
		data = data[n:]
		if e.Shard, ok = readStr(); !ok {
			return ErrCorrupt
		}
		if i > 0 && exemplarLess(e, prev) {
			return ErrCorrupt // must be sorted, largest first
		}
		s.ex = append(s.ex, e)
		prev = e
	}
	if len(data) != 0 {
		return ErrCorrupt
	}
	return nil
}
