package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, plus the design-choice ablations from
// DESIGN.md and microbenchmarks of the simulation substrate.
//
// Figure benches run the corresponding experiment at reduced-but-
// representative scale per iteration and report the headline statistics
// through b.ReportMetric, so `go test -bench=.` prints the reproduced
// numbers next to the timing. For full paper-scale rows use cmd/benchall
// -scale paper.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/log4j"
	"repro/internal/share"
	"repro/internal/sim"
	"repro/internal/stats"
)

// BenchmarkFig4Overall reproduces Fig 4: overall scheduling delays over
// the TPC-H trace (job/total/am/in/out CDFs, normalized, stddev).
func BenchmarkFig4Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(300)
		rep := res.Report
		b.ReportMetric(rep.Total.P95()/1000, "total-p95-s")
		b.ReportMetric(rep.In.P95()/1000, "in-p95-s")
		b.ReportMetric(rep.Out.P95()/1000, "out-p95-s")
		b.ReportMetric(rep.AM.P95()/1000, "am-p95-s")
		b.ReportMetric(rep.TotalOverJob.Median(), "total/job-p50")
		b.ReportMetric(rep.InOverTotal.Median(), "in/total-p50")
	}
}

// BenchmarkFig5InputSize reproduces Fig 5: total scheduling delay vs
// TPC-H input size (20 MB .. 200 GB).
func BenchmarkFig5InputSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(120)
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(last.TotalP95Sec/first.TotalP95Sec, "total-deterioration-x")
		b.ReportMetric(last.InP95Sec/first.InP95Sec, "in-deterioration-x")
		b.ReportMetric(first.NormTotalP95, "20MB-norm-p95")
		b.ReportMetric(last.NormTotalP50, "200GB-norm-p50")
	}
}

// BenchmarkFig6Executors reproduces Fig 6: delay vs executor count and
// the Cl-Cf container-launch spread.
func BenchmarkFig6Executors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(120)
		b.ReportMetric(rows[len(rows)-1].TotalP95Sec, "16exec-total-p95-s")
		b.ReportMetric(rows[1].TotalP95Sec, "4exec-total-p95-s")
		b.ReportMetric(rows[len(rows)-1].ClMinusCf.P95/1000, "16exec-ClCf-p95-s")
	}
}

// BenchmarkFig7Schedulers reproduces Fig 7: centralized vs distributed
// allocation delay, NM queueing under overload, acquisition vs load.
func BenchmarkFig7Schedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(120)
		b.ReportMetric(res.CentralAlloc.P50/nz(res.DistributedAlloc.P50), "alloc-speedup-x")
		b.ReportMetric(res.CentralAlloc.P95, "ce-alloc-p95-ms")
		b.ReportMetric(res.DistributedAlloc.P95, "de-alloc-p95-ms")
		b.ReportMetric(res.DistQueueing.P95/1000, "de-queueing-p95-s")
	}
}

// BenchmarkTableIIThroughput reproduces Table II: container allocation
// throughput at 10/40/70/100% cluster load.
func BenchmarkTableIIThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableII()
		b.ReportMetric(rows[0].Throughput, "load10-alloc-per-s")
		b.ReportMetric(rows[3].Throughput, "load100-alloc-per-s")
	}
}

// BenchmarkFig8Localization reproduces Fig 8: localization delay vs
// localized file size (default package .. 8 GB --files).
func BenchmarkFig8Localization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(100)
		b.ReportMetric(rows[0].Localization.P50, "default-local-p50-ms")
		b.ReportMetric(rows[len(rows)-1].Localization.P50/1000, "8GB-local-p50-s")
		b.ReportMetric(rows[len(rows)-1].DriverLocalizationP50, "8GB-driver-local-p50-ms")
	}
}

// BenchmarkFig9Launching reproduces Fig 9: launching delay by instance
// type and by container runtime (default vs Docker).
func BenchmarkFig9Launching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(120)
		if spe, ok := res.ByInstance[core.InstSparkExecutor]; ok {
			b.ReportMetric(spe.P50, "spe-launch-p50-ms")
		}
		if mrm, ok := res.ByInstance[core.InstMRMaster]; ok {
			b.ReportMetric(mrm.P50, "mrm-launch-p50-ms")
		}
		b.ReportMetric(res.DockerLaunch.P50-res.DefaultLaunch.P50, "docker-overhead-p50-ms")
		b.ReportMetric(res.DockerLaunch.P95-res.DefaultLaunch.P95, "docker-overhead-p95-ms")
	}
}

// BenchmarkFig11InApp reproduces Fig 11: driver/executor delay for
// wordcount vs Spark-SQL, and the opened-files / parallel-init sweep.
func BenchmarkFig11InApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(100)
		b.ReportMetric(res.SQLDriver.P50/1000, "driver-p50-s")
		b.ReportMetric(res.WordcountExecutor.P95/1000, "wc-exec-p95-s")
		b.ReportMetric(res.SQLExecutor.P95/1000, "sql-exec-p95-s")
		opt, x1 := res.ExecutorByVariant["opt"], res.ExecutorByVariant["x1"]
		b.ReportMetric((x1.P95-opt.P95)/1000, "opt-tail-saving-s")
	}
}

// BenchmarkFig12IOInterference reproduces Fig 12: delays under dfsIO
// write interference.
func BenchmarkFig12IOInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(100)
		base, heavy := rows[0], rows[len(rows)-1]
		b.ReportMetric(heavy.TotalP95Sec/nz(base.TotalP95Sec), "total-slowdown-x")
		b.ReportMetric(heavy.Localization.P50/nz(base.Localization.P50), "local-p50-slowdown-x")
		b.ReportMetric(heavy.Executor.P95/nz(base.Executor.P95), "exec-p95-slowdown-x")
		b.ReportMetric(heavy.AM.P95/nz(base.AM.P95), "am-p95-slowdown-x")
	}
}

// BenchmarkFig13CPUInterference reproduces Fig 13: delays under Kmeans
// CPU interference.
func BenchmarkFig13CPUInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(100)
		base, heavy := rows[0], rows[len(rows)-1]
		b.ReportMetric(heavy.TotalP95Sec/nz(base.TotalP95Sec), "total-slowdown-x")
		b.ReportMetric(heavy.Driver.P95/nz(base.Driver.P95), "driver-p95-slowdown-x")
		b.ReportMetric(heavy.Executor.P95/nz(base.Executor.P95), "exec-p95-slowdown-x")
		b.ReportMetric(heavy.Localization.P50/nz(base.Localization.P50), "local-p50-slowdown-x")
	}
}

// BenchmarkTableIIISummary reproduces Table III: each component's
// contribution to the total scheduling delay.
func BenchmarkTableIIISummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIII(experiments.Fig4(200))
		for _, r := range rows {
			switch r.Source {
			case "1.alloc-delays":
				b.ReportMetric(r.Contribution, "alloc-share")
			case "5.driver-delay":
				b.ReportMetric(r.Contribution, "driver-share")
			case "6.executor-delay":
				b.ReportMetric(r.Contribution, "executor-share")
			}
		}
	}
}

// BenchmarkBugDetection reproduces §V-A: SDchecker finding the Spark
// over-allocation bug (SPARK-21562) in opportunistic mode.
func BenchmarkBugDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.BugHunt(60)
		b.ReportMetric(res.UnusedPerApp, "unused-containers-per-app")
		b.ReportMetric(float64(len(res.Findings)), "findings")
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationHeartbeat sweeps the AM heartbeat interval
// (Table III row 2 trade-off).
func BenchmarkAblationHeartbeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationHeartbeat()
		b.ReportMetric(rows[0].Acquisition.P95, "250ms-hb-acq-p95-ms")
		b.ReportMetric(rows[2].Acquisition.P95, "1000ms-hb-acq-p95-ms")
		b.ReportMetric(rows[len(rows)-1].Acquisition.P95, "3000ms-hb-acq-p95-ms")
	}
}

// BenchmarkAblationGate sweeps spark.scheduler.minRegisteredResourcesRatio.
func BenchmarkAblationGate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationGate(80)
		b.ReportMetric(rows[0].Executor.P95/1000, "gate0.5-exec-p95-s")
		b.ReportMetric(rows[len(rows)-1].Executor.P95/1000, "gate1.0-exec-p95-s")
	}
}

// BenchmarkAblationJVMReuse measures the paper's proposed JVM-reuse
// optimization (Table III rows 5-6).
func BenchmarkAblationJVMReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationJVMReuse(80)
		if r := res.Comparison.Row("launching"); r != nil {
			b.ReportMetric(r.SpeedupP50, "launch-speedup-x")
		}
		if r := res.Comparison.Row("total"); r != nil {
			b.ReportMetric(r.SpeedupP50, "total-speedup-x")
		}
	}
}

// BenchmarkAblationDedicatedDisk measures the §V-B dedicated
// localization storage class under dfsIO interference.
func BenchmarkAblationDedicatedDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationDedicatedDisk(80)
		if r := res.Comparison.Row("localization"); r != nil {
			b.ReportMetric(r.SpeedupP50, "local-speedup-x")
		}
		if r := res.Comparison.Row("total"); r != nil {
			b.ReportMetric(r.SpeedupP95, "total-speedup-x")
		}
	}
}

// BenchmarkAblationOrdering compares FIFO vs Fair request ordering with a
// large job in front of small queries.
func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationOrdering(60)
		if r := res.Comparison.Row("alloc"); r != nil {
			b.ReportMetric(r.SpeedupP95, "alloc-speedup-x")
		}
	}
}

// BenchmarkExtensionSampling measures the power-of-k-choices extension
// to the distributed scheduler (taming Fig 7b's queueing tail).
func BenchmarkExtensionSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtensionSampling(120)
		b.ReportMetric(rows[0].Queueing.P95/1000, "random-queueing-p95-s")
		b.ReportMetric(rows[len(rows)-1].Queueing.P95/1000, "sample4-queueing-p95-s")
	}
}

// BenchmarkExtensionCacheService measures the full §V-B caching-service
// proposal under dfsIO interference.
func BenchmarkExtensionCacheService(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.ExtensionCacheService(60)
		if r := res.Comparison.Row("localization"); r != nil {
			b.ReportMetric(r.SpeedupP50, "local-speedup-x")
		}
		b.ReportMetric(res.HitRate, "cache-hit-rate")
	}
}

// BenchmarkMultiTenantIsolation measures queue ceilings protecting a
// low-latency tenant from a batch flood (the paper's multi-tenant
// motivation, quantified).
func BenchmarkMultiTenantIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.MultiTenant(60)
		b.ReportMetric(res.ProdAllocShared.P95, "shared-alloc-p95-ms")
		b.ReportMetric(res.ProdAllocIsolated.P95, "isolated-alloc-p95-ms")
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkEngineEvents measures raw discrete-event throughput.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			eng.After(1, step)
		}
	}
	b.ResetTimer()
	eng.After(1, step)
	eng.Run()
}

// BenchmarkShareChurn measures processor-sharing recomputation with many
// concurrent jobs.
func BenchmarkShareChurn(b *testing.B) {
	eng := sim.NewEngine()
	r := share.NewResource(eng, "disk", 1000)
	for i := 0; i < 64; i++ {
		r.Start(1e12, 50, func(sim.Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := r.Start(1, 50, func(sim.Time) {})
		r.Cancel(j)
	}
}

// BenchmarkLogParse measures SDchecker's line-mining throughput.
func BenchmarkLogParse(b *testing.B) {
	lines := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		lines = append(lines, log4j.Line{
			TimeMS:  1499000000000 + int64(i),
			Level:   log4j.Info,
			Class:   "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl",
			Message: "container_1499000000000_0001_01_000002 Container Transitioned from NEW to ALLOCATED",
		}.Format())
	}
	blob := strings.Join(lines, "\n")
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewParser()
		if err := p.ParseReader("hadoop/rm.log", strings.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
		if len(p.Events()) != 1000 {
			b.Fatal("wrong event count")
		}
	}
}

// BenchmarkEndToEndQuery measures one full simulated query + SDchecker
// pass — the unit of work every figure bench is built from.
func BenchmarkEndToEndQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.DefaultTraceRun(1)
		tr.Seed = uint64(i) + 1
		_, rep := tr.Run()
		if len(rep.Apps) != 1 {
			b.Fatal("query did not run")
		}
	}
}

// BenchmarkCDFAggregation measures report statistics over a large sample.
func BenchmarkCDFAggregation(b *testing.B) {
	s := stats.NewSample(100_000)
	for i := 0; i < 100_000; i++ {
		s.Add(float64(i * 7 % 100_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CDF(100)
		_ = s.P95()
	}
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
